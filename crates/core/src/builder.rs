//! The unified cold-start entry point.
//!
//! [`ColdStart`] replaces the grown-by-accretion free-function zoo
//! (`cold_start`, `cold_start_traced`, `cold_start_tp`,
//! `cold_start_tp_traced`, `materialize_offline_sharded`) with one builder:
//!
//! ```
//! use medusa::{ColdStart, Strategy};
//! use medusa_model::ModelSpec;
//!
//! let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
//! let (artifacts, _offline) = ColdStart::new(&spec).materialize(41).unwrap();
//! let outcome = ColdStart::new(&spec)
//!     .strategy(Strategy::Medusa)
//!     .artifacts(&artifacts)
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.strategy_used(), Strategy::Medusa);
//! assert!(outcome.fallback().is_none());
//! ```
//!
//! Beyond ergonomics, the builder owns the **degradation ladder** (§7): when
//! a Medusa artifact fails validation ([`crate::validator::ArtifactValidator`])
//! or the restore path errors at runtime, the cold start is downgraded to
//! [`Strategy::Vanilla`], the reason is recorded on the outcome and in
//! telemetry (`coldstart_fallback_{kind}_total`), and serving still starts.
//! Fault injection plugs in through [`ColdStart::faults`]: artifact-level
//! faults tamper a *copy* of the artifact before validation, runtime faults
//! fire inside the pipeline. The fallback attempt runs clean — an injected
//! fault fires at most once.
//!
//! Seed semantics are preserved exactly from the free functions: the
//! single-instance path (no [`ColdStart::tp`] call) consumes `opts.seed`
//! directly like `cold_start` did, while the tensor-parallel path (any
//! `tp(n)` call, including `n = 1`) derives per-rank seeds like
//! `cold_start_tp` did — so measurements and committed baselines are
//! unchanged by migrating.

use crate::artifact::MaterializedState;
use crate::error::{MedusaError, MedusaResult};
use crate::faults::FaultPlan;
use crate::pipeline::{
    cold_start_impl, materialize_offline_shard_impl, ColdStartOptions, ColdStartReport,
    OfflineReport, Parallelism, ReadyEngine, Strategy, TriggeringMode,
};
use crate::tp::{cold_start_tp_impl, TpArtifacts, TpColdStart};
use crate::validator::ArtifactValidator;
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_telemetry::Registry;

/// Why a cold start was downgraded to the vanilla path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fallback {
    /// The strategy originally requested.
    pub from: Strategy,
    /// Stable error kind that triggered the downgrade
    /// ([`MedusaError::kind`]).
    pub reason: &'static str,
    /// Human-readable detail (the error's display).
    pub detail: String,
}

/// What a [`ColdStart::run`] produced: per-rank engines and reports plus
/// the degradation record.
#[derive(Debug)]
pub struct ColdStartOutcome {
    /// Serving-ready engines, rank order (one entry on the single path).
    pub engines: Vec<ReadyEngine>,
    /// Per-rank timing reports.
    pub reports: Vec<ColdStartReport>,
    /// The parallelism mode the instance restored under.
    pub parallelism: Parallelism,
    /// End-of-loading synchronization across ranks (zero on the single
    /// path and for `tp = 1`).
    pub sync: SimDuration,
    requested: Strategy,
    used: Strategy,
    fallback: Option<Fallback>,
}

impl ColdStartOutcome {
    /// The strategy that was requested.
    pub fn strategy_requested(&self) -> Strategy {
        self.requested
    }

    /// The strategy that actually served (differs from the request after a
    /// fallback).
    pub fn strategy_used(&self) -> Strategy {
        self.used
    }

    /// The degradation record, if the cold start fell back to vanilla.
    pub fn fallback(&self) -> Option<&Fallback> {
        self.fallback.as_ref()
    }

    /// The first (or only) rank's report.
    pub fn report(&self) -> &ColdStartReport {
        &self.reports[0]
    }

    /// Mutable access to the first (or only) rank's engine.
    pub fn engine_mut(&mut self) -> &mut ReadyEngine {
        &mut self.engines[0]
    }

    /// Consumes a single-rank outcome into `(engine, report)` — the return
    /// shape of the deprecated `cold_start`.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has more than one rank.
    pub fn into_single(mut self) -> (ReadyEngine, ColdStartReport) {
        assert_eq!(self.engines.len(), 1, "into_single on a tp>1 outcome");
        (self.engines.remove(0), self.reports.remove(0))
    }

    /// The instance's loading-phase duration (rank rollup per the
    /// parallelism mode, plus the cross-rank barrier).
    pub fn loading(&self) -> SimDuration {
        self.rollup(|r| r.loading) + self.sync
    }

    /// The instance's full cold-start duration, rolled up like
    /// [`ColdStartOutcome::loading`].
    pub fn total(&self) -> SimDuration {
        self.rollup(|r| r.total) + self.sync
    }

    /// Aggregate loading-phase work across ranks (resource-time consumed
    /// regardless of overlap).
    pub fn aggregate_work(&self) -> SimDuration {
        self.reports.iter().map(ColdStartReport::work).sum()
    }

    fn rollup(&self, f: impl Fn(&ColdStartReport) -> SimDuration) -> SimDuration {
        if self.parallelism == Parallelism::Serial {
            self.reports.iter().map(f).sum()
        } else {
            self.reports
                .iter()
                .map(f)
                .max()
                .unwrap_or(SimDuration::ZERO)
        }
    }

    /// A stable, deterministic one-line JSON summary of the outcome —
    /// same-seed runs (faulty or not) produce byte-identical strings.
    pub fn summary_json(&self) -> String {
        let fb = match &self.fallback {
            None => "null".to_string(),
            Some(f) => format!(
                "{{\"from\":\"{}\",\"reason\":\"{}\",\"detail\":\"{}\"}}",
                f.from,
                f.reason,
                f.detail.replace('\\', "\\\\").replace('"', "\\\"")
            ),
        };
        format!(
            "{{\"requested\":\"{}\",\"used\":\"{}\",\"fallback\":{},\"ranks\":{},\"loading_ns\":{},\"total_ns\":{}}}",
            self.requested,
            self.used,
            fb,
            self.reports.len(),
            self.loading().as_nanos(),
            self.total().as_nanos()
        )
    }
}

impl From<TpColdStart> for ColdStartOutcome {
    fn from(tp: TpColdStart) -> Self {
        ColdStartOutcome {
            engines: tp.engines,
            reports: tp.reports,
            parallelism: tp.parallelism,
            sync: tp.sync,
            requested: Strategy::Vanilla,
            used: Strategy::Vanilla,
            fallback: None,
        }
    }
}

enum ArtifactSource<'a> {
    Single(&'a MaterializedState),
    Tp(&'a TpArtifacts),
    /// MAF2-encoded bundle bytes, validated header-first and materialized
    /// lazily (only the ranks this cold start restores).
    Bytes(&'a [u8]),
}

/// Builder for cold starts: strategy, target, options, artifacts,
/// telemetry, and fault injection in one place, with graceful degradation
/// to the vanilla path on any validation or restore failure.
pub struct ColdStart<'a> {
    spec: &'a ModelSpec,
    strategy: Strategy,
    gpu: GpuSpec,
    cost: CostModel,
    opts: ColdStartOptions,
    tp: Option<u32>,
    artifact: Option<ArtifactSource<'a>>,
    tele: Option<&'a Registry>,
    faults: Option<FaultPlan>,
    validate_artifact: bool,
}

impl<'a> ColdStart<'a> {
    /// Starts a builder for `spec` with defaults: [`Strategy::Vanilla`] on
    /// an A100-40GB with the default cost model and options, artifact
    /// validation on, no faults, no telemetry, single instance.
    pub fn new(spec: &'a ModelSpec) -> Self {
        ColdStart {
            spec,
            strategy: Strategy::Vanilla,
            gpu: GpuSpec::a100_40gb(),
            cost: CostModel::default(),
            opts: ColdStartOptions::default(),
            tp: None,
            artifact: None,
            tele: None,
            faults: None,
            validate_artifact: true,
        }
    }

    /// Sets the cold-start strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the GPU the instance restores onto.
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets the simulation cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the full option block (for callers that already hold one).
    pub fn options(mut self, opts: ColdStartOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the process seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Starts from a warm container (no runtime init).
    pub fn warm(mut self, warm: bool) -> Self {
        self.opts.warm_container = warm;
        self
    }

    /// Runs validation forwardings on every restored graph (Medusa only).
    pub fn validate_graphs(mut self, validate: bool) -> Self {
        self.opts.validate = validate;
        self
    }

    /// Enables/disables pre-restore artifact validation (on by default).
    pub fn validate_artifact(mut self, validate: bool) -> Self {
        self.validate_artifact = validate;
        self
    }

    /// Sets the triggering mode for hidden kernel modules.
    pub fn triggering(mut self, mode: TriggeringMode) -> Self {
        self.opts.triggering = mode;
        self
    }

    /// Sets the stage/rank parallelism mode.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.opts.parallelism = parallelism;
        self
    }

    /// Sets the first-token prompt length.
    pub fn first_token_prompt(mut self, tokens: u32) -> Self {
        self.opts.first_token_prompt = tokens;
        self
    }

    /// Runs as a `tp`-way tensor-parallel instance. Calling `tp(1)` still
    /// routes through the tensor-parallel path (per-rank seed derivation
    /// and barrier accounting); *not* calling it runs the plain
    /// single-process path that consumes the seed directly.
    pub fn tp(mut self, tp: u32) -> Self {
        self.tp = Some(tp);
        self
    }

    /// Supplies the materialized artifact for the single-instance path.
    pub fn artifact(mut self, artifact: &'a MaterializedState) -> Self {
        self.artifact = Some(ArtifactSource::Single(artifact));
        self
    }

    /// Supplies per-rank artifacts; implies `tp(artifacts.tp())` unless
    /// [`ColdStart::tp`] was called explicitly.
    pub fn artifacts(mut self, artifacts: &'a TpArtifacts) -> Self {
        if self.tp.is_none() {
            self.tp = Some(artifacts.tp());
        }
        self.artifact = Some(ArtifactSource::Tp(artifacts));
        self
    }

    /// Supplies a MAF2-encoded artifact bundle (see
    /// [`TpArtifacts::to_maf2`]) — the path a registry fetch feeds. The
    /// bundle is validated header-first against the shared section index
    /// and only the ranks this cold start restores are materialized; on the
    /// single-instance path that means reading one shard's sections, not
    /// the whole file. Binary fault classes
    /// ([`FaultPlan::apply_to_maf2`]) tamper the byte stream before open.
    pub fn artifact_bytes(mut self, bytes: &'a [u8]) -> Self {
        self.artifact = Some(ArtifactSource::Bytes(bytes));
        self
    }

    /// Records spans and metrics into `tele` (validation outcomes and
    /// fallbacks included).
    pub fn telemetry(mut self, tele: &'a Registry) -> Self {
        self.tele = Some(tele);
        self
    }

    /// Arms deterministic fault injection for this cold start.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the offline materialization phase for this builder's target:
    /// one artifact per rank (a single rank without [`ColdStart::tp`]),
    /// using the builder's parallelism mode for cross-rank scheduling.
    ///
    /// The offline phase has its own process, hence its own `seed` —
    /// artifacts must restore across *different* process seeds.
    ///
    /// # Errors
    ///
    /// Propagates capture/analysis failures.
    pub fn materialize(&self, seed: u64) -> MedusaResult<(TpArtifacts, OfflineReport)> {
        let tp = self.tp.unwrap_or(1);
        match self.tp {
            None => {
                let (artifact, report) = materialize_offline_shard_impl(
                    self.spec,
                    0,
                    1,
                    self.gpu.clone(),
                    self.cost.clone(),
                    seed,
                )?;
                Ok((TpArtifacts::new(vec![artifact])?, report))
            }
            Some(_) => crate::tp::materialize_offline_tp_with(
                self.spec,
                tp,
                self.gpu.clone(),
                self.cost.clone(),
                seed,
                self.opts.parallelism,
            ),
        }
    }

    /// Runs the cold start.
    ///
    /// The ladder: artifact-level faults tamper a copy of the artifact;
    /// the validator rejects untrustworthy artifacts; a rejected artifact
    /// or a runtime failure on the Medusa path downgrades to a clean
    /// [`Strategy::Vanilla`] attempt, recorded on the outcome and in
    /// telemetry. Errors with nothing to degrade to (vanilla failures,
    /// [`MedusaError::ArtifactRequired`]) surface as typed errors.
    ///
    /// # Errors
    ///
    /// * [`MedusaError::ArtifactRequired`] for [`Strategy::Medusa`] with no
    ///   artifact supplied.
    /// * Propagated errors from non-degradable attempts.
    pub fn run(self) -> MedusaResult<ColdStartOutcome> {
        let requested = self.strategy;
        let mut opts = self.opts;
        if let Some(plan) = self.faults {
            opts.fault = Some(plan);
        }
        // A binary source is opened header-first and materialized lazily;
        // decode/validation failures degrade like any validation failure.
        // Binary fault classes tamper the byte stream before open, so the
        // decoded-artifact tampering below never applies to this path.
        if let Some(ArtifactSource::Bytes(raw)) = &self.artifact {
            let tampered_bytes: Option<Vec<u8>> = match self.faults {
                Some(plan) if !plan.is_empty() => Some(plan.apply_to_maf2(raw)),
                _ => None,
            };
            let bytes: &[u8] = tampered_bytes.as_deref().unwrap_or(raw);
            let decoded = match self.decode_validated(bytes, &opts) {
                Ok(ranks) => ranks,
                Err(err) if requested == Strategy::Medusa => {
                    if let Some(t) = self.tele {
                        t.inc_labeled("artifact_validation_failed", err.kind(), 1);
                    }
                    let fb = Fallback {
                        from: requested,
                        reason: err.kind(),
                        detail: err.to_string(),
                    };
                    return self.finish_fallback(requested, fb, opts);
                }
                Err(err) => return Err(err),
            };
            let refs: Vec<&MaterializedState> = decoded.iter().collect();
            return self.finish_attempt(requested, Some(&refs), opts);
        }

        // Artifact-level faults tamper copies; healthy runs borrow.
        let tampered: Option<Vec<MaterializedState>> = match (&self.artifact, self.faults) {
            (Some(src), Some(plan)) if !plan.is_empty() => {
                let ranks: Vec<MaterializedState> = match src {
                    ArtifactSource::Single(a) => vec![plan.apply_to_artifact(a)],
                    ArtifactSource::Tp(arts) => {
                        arts.iter().map(|a| plan.apply_to_artifact(a)).collect()
                    }
                    ArtifactSource::Bytes(_) => unreachable!("handled above"),
                };
                Some(ranks)
            }
            _ => None,
        };
        let rank_artifacts: Option<Vec<&MaterializedState>> = match (&tampered, &self.artifact) {
            (Some(t), _) => Some(t.iter().collect()),
            (None, Some(ArtifactSource::Single(a))) => Some(vec![a]),
            (None, Some(ArtifactSource::Tp(arts))) => Some(arts.iter().collect()),
            (None, Some(ArtifactSource::Bytes(_))) | (None, None) => None,
        };

        // Pre-restore validation (Medusa only): any failing check records
        // the reason and downgrades to the vanilla path (§7).
        let mut fallback: Option<Fallback> = None;
        if requested == Strategy::Medusa && self.validate_artifact {
            if let Some(ranks) = &rank_artifacts {
                if let Some(t) = self.tele {
                    t.inc("artifact_validation_total", ranks.len() as u64);
                }
                let base = ArtifactValidator::for_target(self.spec, &self.gpu);
                for (rank, artifact) in ranks.iter().enumerate() {
                    let validator = match self.tp {
                        Some(n) => base.clone().shard(rank as u32, n),
                        None => base.clone().shard(opts.rank, opts.tp),
                    };
                    if let Err(err) = validator.validate(artifact).ok() {
                        if let Some(t) = self.tele {
                            t.inc_labeled("artifact_validation_failed", err.kind(), 1);
                        }
                        fallback = Some(Fallback {
                            from: requested,
                            reason: err.kind(),
                            detail: err.to_string(),
                        });
                        break;
                    }
                }
            }
        }

        if let Some(fb) = fallback {
            // Degraded before the attempt: run vanilla, clean.
            return self.finish_fallback(requested, fb, opts);
        }

        self.finish_attempt(requested, rank_artifacts.as_deref(), opts)
    }

    /// The shared run tail: attempt the requested strategy, degrading a
    /// failed Medusa attempt (that had an artifact) to a clean vanilla run.
    fn finish_attempt(
        &self,
        requested: Strategy,
        rank_artifacts: Option<&[&MaterializedState]>,
        opts: ColdStartOptions,
    ) -> MedusaResult<ColdStartOutcome> {
        match self.attempt(requested, rank_artifacts, opts) {
            Ok(outcome) => Ok(self.stamp(outcome, requested, requested, None)),
            Err(err)
                if requested == Strategy::Medusa
                    && self.artifact.is_some()
                    && !matches!(err, MedusaError::ArtifactRequired) =>
            {
                let fb = Fallback {
                    from: requested,
                    reason: err.kind(),
                    detail: err.to_string(),
                };
                self.finish_fallback(requested, fb, opts)
            }
            Err(err) => Err(err),
        }
    }

    /// Opens a MAF2 bundle and validates it header-first against the shared
    /// section index (one open, per-rank ShardMeta reads — validation work
    /// no longer scales with tp), then materializes only the ranks this
    /// cold start restores: every rank on the tensor-parallel path, exactly
    /// `opts.rank`'s sections on the single path.
    fn decode_validated(
        &self,
        bytes: &[u8],
        opts: &ColdStartOptions,
    ) -> MedusaResult<Vec<MaterializedState>> {
        let reader = crate::artifact::maf2::Maf2Reader::open(bytes)?;
        if self.validate_artifact && self.strategy == Strategy::Medusa {
            if let Some(t) = self.tele {
                t.inc("artifact_validation_total", reader.shard_count() as u64);
            }
            let base = ArtifactValidator::for_target(self.spec, &self.gpu);
            match self.tp {
                Some(_) => {
                    for (_rank, report) in base.validate_bundle(&reader) {
                        report.ok()?;
                    }
                }
                None => {
                    base.shard(opts.rank, opts.tp).validate_maf2(&reader).ok()?;
                }
            }
        }
        match self.tp {
            Some(_) => reader.materialize_all(),
            None => Ok(vec![reader.shard(opts.rank)?.clone()]),
        }
    }

    /// Runs the clean vanilla attempt after a degradation and stamps the
    /// fallback record onto the outcome.
    fn finish_fallback(
        &self,
        requested: Strategy,
        fb: Fallback,
        mut opts: ColdStartOptions,
    ) -> MedusaResult<ColdStartOutcome> {
        if let Some(t) = self.tele {
            t.inc("coldstart_fallback_total", 1);
            t.inc_labeled("coldstart_fallback", fb.reason, 1);
        }
        // Injected faults fire at most once: the fallback attempt is clean.
        opts.fault = None;
        let outcome = self.attempt(Strategy::Vanilla, None, opts)?;
        Ok(self.stamp(outcome, requested, Strategy::Vanilla, Some(fb)))
    }

    fn stamp(
        &self,
        mut outcome: ColdStartOutcome,
        requested: Strategy,
        used: Strategy,
        fallback: Option<Fallback>,
    ) -> ColdStartOutcome {
        outcome.requested = requested;
        outcome.used = used;
        outcome.fallback = fallback;
        outcome
    }

    /// One attempt with the given strategy: routes to the single-process
    /// impl (no `tp()` call) or the tensor-parallel impl.
    fn attempt(
        &self,
        strategy: Strategy,
        rank_artifacts: Option<&[&MaterializedState]>,
        opts: ColdStartOptions,
    ) -> MedusaResult<ColdStartOutcome> {
        match self.tp {
            None => {
                let art = rank_artifacts.and_then(|r| r.first().copied());
                let (engine, report) = cold_start_impl(
                    strategy,
                    self.spec,
                    self.gpu.clone(),
                    self.cost.clone(),
                    art,
                    opts,
                    self.tele,
                )?;
                Ok(ColdStartOutcome {
                    engines: vec![engine],
                    reports: vec![report],
                    parallelism: opts.parallelism,
                    sync: SimDuration::ZERO,
                    requested: strategy,
                    used: strategy,
                    fallback: None,
                })
            }
            Some(tp) => {
                let owned_tp: Option<TpArtifacts> = match rank_artifacts {
                    None => None,
                    Some(ranks) => Some(TpArtifacts::new(
                        ranks.iter().map(|a| (*a).clone()).collect(),
                    )?),
                };
                let out = cold_start_tp_impl(
                    strategy,
                    self.spec,
                    tp,
                    self.gpu.clone(),
                    self.cost.clone(),
                    owned_tp.as_ref(),
                    opts,
                    self.tele,
                )?;
                Ok(ColdStartOutcome::from(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;

    fn spec() -> ModelSpec {
        ModelSpec::by_name("Qwen1.5-0.5B").unwrap()
    }

    fn arts() -> TpArtifacts {
        ColdStart::new(&spec()).materialize(41).unwrap().0
    }

    #[test]
    fn builder_single_path_matches_the_free_function() {
        let s = spec();
        let opts = ColdStartOptions {
            seed: 7,
            ..Default::default()
        };
        let (_e, direct) = cold_start_impl(
            Strategy::Vanilla,
            &s,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            opts,
            None,
        )
        .unwrap();
        let outcome = ColdStart::new(&s).options(opts).run().unwrap();
        assert_eq!(outcome.report(), &direct);
        assert_eq!(outcome.loading(), direct.loading);
        assert_eq!(outcome.total(), direct.total);
        assert!(outcome.fallback().is_none());
        let (_engine, report) = outcome.into_single();
        assert_eq!(report, direct);
    }

    #[test]
    fn builder_tp_path_matches_the_tp_function() {
        let s = spec();
        let direct = cold_start_tp_impl(
            Strategy::NoCudaGraph,
            &s,
            2,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            None,
            ColdStartOptions::default(),
            None,
        )
        .unwrap();
        let outcome = ColdStart::new(&s)
            .strategy(Strategy::NoCudaGraph)
            .tp(2)
            .run()
            .unwrap();
        assert_eq!(outcome.reports, direct.reports);
        assert_eq!(outcome.sync, direct.sync);
        assert_eq!(outcome.loading(), direct.loading());
        assert_eq!(outcome.aggregate_work(), direct.aggregate_work());
    }

    #[test]
    fn healthy_medusa_does_not_fall_back() {
        let s = spec();
        let a = arts();
        let outcome = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .artifacts(&a)
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(outcome.strategy_used(), Strategy::Medusa);
        assert!(outcome.fallback().is_none());
        assert_eq!(outcome.engines.len(), 1);
    }

    #[test]
    fn corrupt_artifact_degrades_to_vanilla_with_reason() {
        let s = spec();
        let a = arts();
        let tele = Registry::new();
        let outcome = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .artifacts(&a)
            .telemetry(&tele)
            .faults(FaultPlan::single(FaultKind::CorruptArtifact, 13))
            .run()
            .unwrap();
        assert_eq!(outcome.strategy_requested(), Strategy::Medusa);
        assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
        let fb = outcome.fallback().unwrap();
        assert_eq!(fb.reason, "checksum_mismatch");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("coldstart_fallback_total"), Some(1));
        assert_eq!(
            snap.counter("coldstart_fallback_checksum_mismatch_total"),
            Some(1)
        );
        assert_eq!(
            snap.counter("artifact_validation_failed_checksum_mismatch_total"),
            Some(1)
        );
    }

    #[test]
    fn runtime_fault_on_medusa_degrades_but_vanilla_errors() {
        let s = spec();
        let a = arts();
        let outcome = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .artifacts(&a)
            .faults(FaultPlan::single(FaultKind::TruncatedWeights, 21))
            .run()
            .unwrap();
        assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
        assert_eq!(
            outcome.fallback().unwrap().reason,
            "weight_stream_truncated"
        );
        // Vanilla has nothing to degrade to: the fault surfaces typed.
        let err = ColdStart::new(&s)
            .faults(FaultPlan::single(FaultKind::TruncatedWeights, 21))
            .run()
            .unwrap_err();
        assert_eq!(err.kind(), "weight_stream_truncated");
    }

    #[test]
    fn medusa_without_artifact_is_still_a_hard_error() {
        let err = ColdStart::new(&spec())
            .strategy(Strategy::Medusa)
            .run()
            .unwrap_err();
        assert!(matches!(err, MedusaError::ArtifactRequired));
    }

    #[test]
    fn binary_bundle_cold_start_matches_decoded_artifacts() {
        let s = spec();
        let a = arts();
        let bytes = a.to_maf2().unwrap();
        let from_arts = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .artifacts(&a)
            .seed(9)
            .run()
            .unwrap();
        let from_bytes = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .tp(a.tp())
            .artifact_bytes(&bytes)
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(from_bytes.strategy_used(), Strategy::Medusa);
        assert!(from_bytes.fallback().is_none());
        assert_eq!(from_bytes.reports, from_arts.reports);
    }

    #[test]
    fn tampered_binary_bundle_degrades_to_vanilla() {
        let s = spec();
        let a = arts();
        let bytes = a.to_maf2().unwrap();
        let tele = Registry::new();
        let outcome = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .tp(a.tp())
            .artifact_bytes(&bytes)
            .telemetry(&tele)
            .faults(FaultPlan::single(FaultKind::TruncatedWeights, 17))
            .run()
            .unwrap();
        assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
        let fb = outcome.fallback().unwrap();
        assert_eq!(fb.reason, "artifact_corrupt");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("coldstart_fallback_total"), Some(1));
        assert_eq!(
            snap.counter("artifact_validation_failed_artifact_corrupt_total"),
            Some(1)
        );
    }

    #[test]
    fn same_seed_fault_runs_are_reproducible() {
        let s = spec();
        let a = arts();
        let run = || {
            ColdStart::new(&s)
                .strategy(Strategy::Medusa)
                .artifacts(&a)
                .seed(3)
                .faults(FaultPlan::matrix(77))
                .run()
                .unwrap()
                .summary_json()
        };
        assert_eq!(run(), run());
    }
}
