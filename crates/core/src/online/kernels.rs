//! Online kernel address restoration (paper §5): the `dlsym` path for
//! exported kernels and module enumeration for hidden ones, with
//! first-layer forwarding as the triggering-kernels that force the driver
//! to load the needed modules (§5.2).

use crate::artifact::MaterializedState;
use crate::error::{MedusaError, MedusaResult};
use medusa_gpu::{GpuError, ProcessRuntime};
use std::collections::{HashMap, HashSet};

/// How each kernel's address was restored, for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolutionStats {
    /// Kernels restored via `dlopen` + `dlsym` + `cudaGetFuncBySymbol`.
    pub via_dlsym: usize,
    /// Kernels restored via module enumeration after triggering.
    pub via_enumeration: usize,
}

/// Incrementally resolves materialized kernel names to device addresses.
#[derive(Debug, Default)]
pub struct KernelResolver {
    addrs: HashMap<(String, String), u64>,
    stats: ResolutionStats,
}

impl KernelResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resolved `(library, kernel) → address` map.
    pub fn addrs(&self) -> &HashMap<(String, String), u64> {
        &self.addrs
    }

    /// Resolution statistics.
    pub fn stats(&self) -> &ResolutionStats {
        &self.stats
    }

    /// The unique `(library, kernel, exported)` triples an artifact needs.
    pub fn needed(artifact: &MaterializedState) -> Vec<(String, String, bool)> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for g in &artifact.graphs {
            for n in &g.nodes {
                if seen.insert((n.library.clone(), n.kernel.clone())) {
                    out.push((n.library.clone(), n.kernel.clone(), n.exported));
                }
            }
        }
        out
    }

    /// Resolves every *exported* kernel through the `dlsym` path: `dlopen`
    /// the library, `dlsym` the mangled name, `cudaGetFuncBySymbol` to load
    /// its module and obtain the device address (paper §5, first path).
    ///
    /// Hidden kernels are skipped (they need triggering first); genuinely
    /// missing symbols are errors.
    ///
    /// # Errors
    ///
    /// Returns driver errors other than [`GpuError::SymbolHidden`].
    pub fn resolve_exported(
        &mut self,
        rt: &mut ProcessRuntime,
        artifact: &MaterializedState,
    ) -> MedusaResult<()> {
        for (library, kernel, _exported) in Self::needed(artifact) {
            if self.addrs.contains_key(&(library.clone(), kernel.clone())) {
                continue;
            }
            let handle = rt.dlopen(&library)?;
            match rt.dlsym(handle, &kernel) {
                Ok(sym) => {
                    let addr = rt.cuda_get_func_by_symbol(sym)?;
                    self.addrs.insert((library, kernel), addr);
                    self.stats.via_dlsym += 1;
                }
                Err(GpuError::SymbolHidden { .. }) => { /* needs triggering */ }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Resolves remaining (hidden) kernels by enumerating every module the
    /// driver has loaded so far: `cuModuleEnumerateFunctions` +
    /// `cuFuncGetName` (paper §5, second path). Call after the
    /// triggering-kernels (first-layer warm-up/capture) have run.
    ///
    /// # Errors
    ///
    /// Returns driver errors from the enumeration APIs.
    pub fn resolve_by_enumeration(
        &mut self,
        rt: &mut ProcessRuntime,
        artifact: &MaterializedState,
    ) -> MedusaResult<()> {
        let unresolved: Vec<(String, String)> = Self::needed(artifact)
            .into_iter()
            .filter(|(l, k, _)| !self.addrs.contains_key(&(l.clone(), k.clone())))
            .map(|(l, k, _)| (l, k))
            .collect();
        if unresolved.is_empty() {
            return Ok(());
        }
        let mut by_name: HashMap<String, u64> = HashMap::new();
        for module in rt.loaded_modules() {
            for addr in rt.cu_module_enumerate_functions(module)? {
                let name = rt.cu_func_get_name(addr)?.to_string();
                by_name.insert(name, addr);
            }
        }
        for (library, kernel) in unresolved {
            if let Some(&addr) = by_name.get(&kernel) {
                self.addrs.insert((library, kernel), addr);
                self.stats.via_enumeration += 1;
            }
        }
        Ok(())
    }

    /// Verifies every kernel the artifact references is resolved.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::KernelUnresolved`] naming the first gap.
    pub fn ensure_complete(&self, artifact: &MaterializedState) -> MedusaResult<()> {
        for (library, kernel, _) in Self::needed(artifact) {
            if !self.addrs.contains_key(&(library.clone(), kernel.clone())) {
                return Err(MedusaError::KernelUnresolved { library, kernel });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::analysis::analyze;
    use crate::offline::capture::run_offline_capture;
    use medusa_gpu::{CostModel, GpuSpec};
    use medusa_model::{
        build_catalog, load_weights, warmup_first_layer, KvView, ModelInstance, ModelSpec,
    };

    fn artifact() -> MaterializedState {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let cap =
            run_offline_capture(&spec, GpuSpec::a100_40gb(), CostModel::default(), 31).unwrap();
        analyze(&cap, &CostModel::default()).unwrap().state
    }

    #[test]
    fn dlsym_path_resolves_exported_only() {
        let art = artifact();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            99,
        );
        let mut res = KernelResolver::new();
        res.resolve_exported(&mut rt, &art).unwrap();
        assert!(res.stats().via_dlsym > 0);
        assert!(
            res.ensure_complete(&art).is_err(),
            "hidden GEMMs still missing"
        );
        // Enumeration without triggering finds nothing extra: the exported
        // path loaded framework modules, but cuBLAS modules are untouched.
        res.resolve_by_enumeration(&mut rt, &art).unwrap();
        assert!(matches!(
            res.ensure_complete(&art),
            Err(MedusaError::KernelUnresolved { .. })
        ));
    }

    #[test]
    fn needed_deduplicates_kernels_across_graphs() {
        let art = artifact();
        let needed = KernelResolver::needed(&art);
        let mut names: Vec<&String> = needed.iter().map(|(_, k, _)| k).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "needed() must deduplicate");
        // The model uses far fewer distinct kernels than nodes.
        assert!(total < art.stats.nodes as usize / 10);
    }

    #[test]
    fn resolution_is_idempotent() {
        let art = artifact();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            111,
        );
        let mut res = KernelResolver::new();
        res.resolve_exported(&mut rt, &art).unwrap();
        let first = res.stats().via_dlsym;
        res.resolve_exported(&mut rt, &art).unwrap();
        assert_eq!(res.stats().via_dlsym, first, "second pass must be a no-op");
    }

    #[test]
    fn triggering_first_layer_completes_resolution() {
        let art = artifact();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            100,
        );
        // Online process: structure init + weights, then first-layer warmup
        // as the triggering-kernels (using a dummy KV allocation here).
        let mut inst = ModelInstance::initialize(&mut rt, &spec).unwrap();
        load_weights(&mut rt, &inst, 1.0).unwrap();
        let k = rt.cuda_malloc(4096, medusa_gpu::AllocTag::KvCache).unwrap();
        let v = rt.cuda_malloc(4096, medusa_gpu::AllocTag::KvCache).unwrap();
        let bt = rt.cuda_malloc(256, medusa_gpu::AllocTag::KvCache).unwrap();
        for p in [k, v, bt] {
            rt.memory_mut().write_digest(p.addr(), [1; 16]).unwrap();
        }
        let kv = KvView {
            kcache: k,
            vcache: v,
            block_table: bt,
            block_size: 16,
        };

        let mut res = KernelResolver::new();
        res.resolve_exported(&mut rt, &art).unwrap();
        // Trigger each GEMM bucket: batch sizes hitting all four buckets.
        for b in [1, 8, 64, 256] {
            warmup_first_layer(&mut rt, &mut inst, b, &kv).unwrap();
        }
        res.resolve_by_enumeration(&mut rt, &art).unwrap();
        res.ensure_complete(&art).unwrap();
        assert!(
            res.stats().via_enumeration > 0,
            "hidden kernels resolved by enumeration"
        );
        // Paper §5: most kernels resolvable via dlsym (69.2% of nodes for
        // Llama2 13B); at the unique-kernel level both paths must be used.
        assert!(res.stats().via_dlsym >= 10);
    }
}
