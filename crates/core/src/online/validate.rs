//! Validation forwarding and false-positive correction (paper §4, §8).
//!
//! The pointer/constant classification is heuristic ("the high address
//! prefix may also contain false positive candidates (which are rare)"), so
//! Medusa validates restored graphs by running a model forwarding and
//! comparing the outputs of the eager and the restored-graph executions.
//! On mismatch, the offending speculated pointer is corrected back to a
//! constant.

use crate::artifact::{GraphSpec, ParamSpec};
use crate::error::{MedusaError, MedusaResult};
use crate::online::replay::{restore_graph, ReplayedLayout};
use medusa_gpu::{GpuError, ProcessRuntime};
use medusa_graph::GraphExec;
use medusa_model::{
    capture_ctx_len, decode_step_with_graph, input_digest, run_eager_forward_step, ForwardConfig,
    KvView, ModelInstance,
};
use std::collections::HashMap;

/// The step counter used for validation inputs, distinct from serving steps.
pub const VALIDATION_STEP: u64 = 0x5eed_0001;

/// Resets the KV cache contents to the canonical validation state so eager
/// and replayed executions start identically.
///
/// # Errors
///
/// Returns a driver error if the KV buffers are stale.
pub fn reset_kv_state(rt: &mut ProcessRuntime, kv: &KvView) -> MedusaResult<()> {
    rt.memory_mut()
        .write_digest(kv.kcache.addr(), input_digest("validate_k", 0, 0))?;
    rt.memory_mut()
        .write_digest(kv.vcache.addr(), input_digest("validate_v", 0, 0))?;
    rt.memory_mut()
        .write_digest(kv.block_table.addr(), input_digest("validate_bt", 0, 0))?;
    Ok(())
}

/// Runs the validation forwarding: eager output vs. restored-graph replay
/// output for the same inputs (paper §4). A replay fault (dangling pointer,
/// stale kernel) counts as a validation failure, not an error.
///
/// # Errors
///
/// Returns driver errors from the *eager* reference run only.
pub fn validate_graph(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    exec: &GraphExec,
    batch: u32,
    kv: &KvView,
) -> MedusaResult<bool> {
    let cfg = ForwardConfig::decode(batch, capture_ctx_len());
    reset_kv_state(rt, kv)?;
    let eager = run_eager_forward_step(rt, inst, &cfg, Some(kv), VALIDATION_STEP)?;
    reset_kv_state(rt, kv)?;
    match decode_step_with_graph(rt, inst, exec, batch, VALIDATION_STEP) {
        Ok(replayed) => Ok(replayed.output == eager.output),
        Err(medusa_graph::GraphError::Gpu(
            GpuError::DanglingRead { .. }
            | GpuError::DanglingWrite { .. }
            | GpuError::InvalidDeviceFunction { .. }
            | GpuError::InvalidPointer { .. },
        )) => Ok(false),
        Err(e) => Err(e.into()),
    }
}

/// Outcome of [`validate_and_correct`].
#[derive(Debug)]
pub struct ValidatedGraph {
    /// The instantiated, validated graph.
    pub exec: GraphExec,
    /// Number of speculated pointers corrected back to constants.
    pub corrected_params: usize,
}

/// Restores, instantiates and validates a graph; on output mismatch,
/// corrects false-positive pointer speculations back to constants
/// one-by-one until validation passes (§4/§8). The corrections are written
/// back into `gspec` so re-restorations inherit them.
///
/// # Errors
///
/// * [`MedusaError::ValidationFailed`] if no correction repairs the graph.
/// * Restoration/driver errors.
pub fn validate_and_correct(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    gspec: &mut GraphSpec,
    layout: &ReplayedLayout,
    kernel_addrs: &HashMap<(String, String), u64>,
    kv: &KvView,
) -> MedusaResult<ValidatedGraph> {
    let graph = restore_graph(gspec, layout, kernel_addrs)?;
    let exec = GraphExec::instantiate(rt, graph)?;
    if validate_graph(rt, inst, &exec, gspec.batch, kv)? {
        return Ok(ValidatedGraph {
            exec,
            corrected_params: 0,
        });
    }

    // Candidate false positives: every speculated pointer, tried in order.
    let candidates: Vec<(usize, usize)> = gspec
        .nodes
        .iter()
        .enumerate()
        .flat_map(|(ni, n)| {
            n.params
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, ParamSpec::IndirectPtr { .. }))
                .map(move |(pi, _)| (ni, pi))
        })
        .collect();

    let mut corrected = 0usize;
    for (ni, pi) in candidates {
        let original = gspec.nodes[ni].params[pi].clone();
        let ParamSpec::IndirectPtr { raw, .. } = original else {
            continue;
        };
        gspec.nodes[ni].params[pi] = ParamSpec::Const {
            bytes: raw.to_le_bytes().to_vec(),
        };
        let graph = restore_graph(gspec, layout, kernel_addrs)?;
        let exec = GraphExec::instantiate(rt, graph)?;
        if validate_graph(rt, inst, &exec, gspec.batch, kv)? {
            corrected += 1;
            return Ok(ValidatedGraph {
                exec,
                corrected_params: corrected,
            });
        }
        gspec.nodes[ni].params[pi] = original;
    }
    Err(MedusaError::ValidationFailed { batch: gspec.batch })
}
