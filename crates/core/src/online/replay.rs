//! Online allocation-sequence replay and data-pointer restoration
//! (paper §4.2) plus copy-free contents restoration (§4.3).
//!
//! The online cold start runs model structure initialization naturally; its
//! allocations form the *prefix* of the recorded sequence (deterministic
//! control flow). Medusa then replays the remainder of the recorded
//! (de)allocation sequence — the allocations the skipped profiling,
//! warm-up and capture forwardings would have performed — recording every
//! returned address. Indirect index pointers resolve against this map.

use crate::artifact::{GraphSpec, MaterializedState, ParamSpec, ReplayOp};
use crate::error::{MedusaError, MedusaResult};
use medusa_gpu::{AllocTag, DevicePtr, ParamBuffer, ProcessRuntime, SimDuration};
use medusa_graph::CudaGraph;
use medusa_model::{KvView, Workspace};
use std::collections::HashMap;

/// The restored buffer layout of an online process.
#[derive(Debug)]
pub struct ReplayedLayout {
    seq_to_ptr: HashMap<u64, DevicePtr>,
    labels: HashMap<String, DevicePtr>,
}

impl ReplayedLayout {
    /// The pointer created by allocation `seq`, if live.
    pub fn ptr(&self, seq: u64) -> Option<DevicePtr> {
        self.seq_to_ptr.get(&seq).copied()
    }

    /// Resolves a semantic label to its restored pointer.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::MissingLabel`] for unknown labels.
    pub fn label(&self, name: &str) -> MedusaResult<DevicePtr> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| MedusaError::MissingLabel {
                label: name.to_string(),
            })
    }

    /// The restored KV cache view.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::MissingLabel`] if KV labels are absent.
    pub fn kv_view(&self, block_size: u32) -> MedusaResult<KvView> {
        Ok(KvView {
            kcache: self.label("kv.key")?,
            vcache: self.label("kv.value")?,
            block_table: self.label("kv.block_table")?,
            block_size,
        })
    }

    /// The restored persistent decode workspace.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::MissingLabel`] if any workspace label is
    /// absent.
    pub fn workspace(&self) -> MedusaResult<Workspace> {
        Ok(Workspace {
            ids: self.label("ws.ids")?,
            positions: self.label("ws.positions")?,
            slots: self.label("ws.slots")?,
            hidden: self.label("ws.hidden")?,
            residual: self.label("ws.residual")?,
            qkv: self.label("ws.qkv")?,
            attn_out: self.label("ws.attn_out")?,
            gate_up: self.label("ws.gate_up")?,
            mlp_act: self.label("ws.mlp_act")?,
            logits: self.label("ws.logits")?,
            next_tokens: self.label("ws.next_tokens")?,
        })
    }

    /// The restored per-layer magic buffer pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MedusaError::MissingLabel`] if a pair is absent.
    pub fn magic_pairs(&self, layers: u32) -> MedusaResult<Vec<(DevicePtr, DevicePtr)>> {
        (0..layers)
            .map(|l| {
                Ok((
                    self.label(&format!("magic.{l}.a"))?,
                    self.label(&format!("magic.{l}.b"))?,
                ))
            })
            .collect()
    }
}

/// Replays the artifact's (de)allocation sequence on `rt` and restores
/// permanent buffer contents. Must run right after model structure
/// initialization.
///
/// Returns the layout together with the replay's simulated duration (the
/// bulk of Medusa's 0.02 s KV-init stage, Fig. 8c).
///
/// # Errors
///
/// * [`MedusaError::ReplayMisaligned`] if the process performed a different
///   number of natural allocations than the artifact expects.
/// * [`MedusaError::ReplayDanglingFree`] on a free of an unmapped index.
/// * Driver errors (OOM) from the replayed allocations.
pub fn replay_allocations(
    rt: &mut ProcessRuntime,
    artifact: &MaterializedState,
) -> MedusaResult<(ReplayedLayout, SimDuration)> {
    let t0 = rt.now();
    rt.advance(SimDuration::from_nanos(rt.cost().artifact_open_ns));

    let actual = rt.memory().next_seq();
    if actual != artifact.replay_prefix_allocs {
        return Err(MedusaError::ReplayMisaligned {
            expected: artifact.replay_prefix_allocs,
            actual,
        });
    }
    // Natural prefix: the live allocations structure init performed.
    let mut seq_to_ptr: HashMap<u64, DevicePtr> =
        rt.memory().iter().map(|a| (a.seq(), a.base())).collect();

    // Replay the remainder of the recorded sequence.
    let mut next_seq = artifact.replay_prefix_allocs;
    for op in &artifact.replay_ops {
        match op {
            ReplayOp::Malloc { size } => {
                let ptr = rt.cuda_malloc(*size, AllocTag::Other)?;
                seq_to_ptr.insert(next_seq, ptr);
                next_seq += 1;
            }
            ReplayOp::Free { alloc_seq } => {
                let ptr = seq_to_ptr
                    .remove(alloc_seq)
                    .ok_or(MedusaError::ReplayDanglingFree {
                        alloc_seq: *alloc_seq,
                    })?;
                rt.cuda_free(ptr)?;
            }
        }
    }

    // Copy-free contents restoration: permanent buffers only (§4.3).
    for (seq, digest) in &artifact.permanent_contents {
        let ptr = seq_to_ptr
            .get(seq)
            .copied()
            .ok_or(MedusaError::ReplayDanglingFree { alloc_seq: *seq })?;
        rt.memory_mut().write_digest(ptr.addr(), *digest)?;
    }

    // Indirect pointers (§8): rebuild materialized pointer tables with the
    // restored addresses.
    for (seq, entries) in &artifact.permanent_ptr_tables {
        let table_ptr = seq_to_ptr
            .get(seq)
            .copied()
            .ok_or(MedusaError::ReplayDanglingFree { alloc_seq: *seq })?;
        let table = entries
            .iter()
            .map(|e| {
                seq_to_ptr
                    .get(&e.alloc_seq)
                    .map(|p| p.offset(e.offset).addr())
                    .ok_or(MedusaError::ReplayDanglingFree {
                        alloc_seq: e.alloc_seq,
                    })
            })
            .collect::<MedusaResult<Vec<u64>>>()?;
        rt.memory_mut().write_ptr_table(table_ptr.addr(), table)?;
    }

    let labels = artifact
        .labels
        .iter()
        .map(|(name, seq)| {
            let ptr = seq_to_ptr
                .get(seq)
                .copied()
                .ok_or(MedusaError::ReplayDanglingFree { alloc_seq: *seq })?;
            Ok((name.clone(), ptr))
        })
        .collect::<MedusaResult<HashMap<_, _>>>()?;

    Ok((ReplayedLayout { seq_to_ptr, labels }, rt.now().since(t0)))
}

/// Rebuilds one CUDA graph from its materialized spec: kernel addresses from
/// `kernel_addrs` (see [`crate::KernelResolver`]), data pointers through the
/// replayed layout, constants by value.
///
/// # Errors
///
/// * [`MedusaError::KernelUnresolved`] for kernels missing from the map.
/// * [`MedusaError::UnmatchedPointer`] for indirect indices whose buffer is
///   not live in the layout.
pub fn restore_graph(
    gspec: &GraphSpec,
    layout: &ReplayedLayout,
    kernel_addrs: &HashMap<(String, String), u64>,
) -> MedusaResult<CudaGraph> {
    let mut graph = CudaGraph::new();
    for (ni, n) in gspec.nodes.iter().enumerate() {
        let addr = kernel_addrs
            .get(&(n.library.clone(), n.kernel.clone()))
            .copied()
            .ok_or_else(|| MedusaError::KernelUnresolved {
                library: n.library.clone(),
                kernel: n.kernel.clone(),
            })?;
        let parts = n
            .params
            .iter()
            .enumerate()
            .map(|(pi, p)| match p {
                ParamSpec::Const { bytes } => {
                    let mut buf = [0u8; 8];
                    buf[..bytes.len()].copy_from_slice(bytes);
                    Ok((u64::from_le_bytes(buf), bytes.len() as u32))
                }
                ParamSpec::IndirectPtr {
                    alloc_seq, offset, ..
                } => {
                    let base = layout
                        .ptr(*alloc_seq)
                        .ok_or(MedusaError::UnmatchedPointer {
                            batch: gspec.batch,
                            node: ni,
                            param: pi,
                            addr: *alloc_seq,
                        })?;
                    Ok((base.offset(*offset).addr(), 8))
                }
            })
            .collect::<MedusaResult<Vec<_>>>()?;
        graph.add_kernel_node(addr, ParamBuffer::from_parts(&parts), n.work);
    }
    for &(s, d) in &gspec.edges {
        graph
            .add_dependency(s as usize, d as usize)
            .map_err(MedusaError::Graph)?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{AnalysisStats, ARTIFACT_VERSION};
    use medusa_gpu::{CostModel, GpuSpec, LibraryCatalog, LibrarySpec};
    use std::sync::Arc;

    fn empty_rt() -> ProcessRuntime {
        let catalog: Arc<LibraryCatalog> =
            LibraryCatalog::new(vec![LibrarySpec::new("x.so", false, vec![])]);
        ProcessRuntime::new(catalog, GpuSpec::new("t", 1 << 30), CostModel::default(), 5)
    }

    fn artifact(prefix: u64, ops: Vec<ReplayOp>) -> MaterializedState {
        MaterializedState {
            version: ARTIFACT_VERSION,
            model: "m".into(),
            gpu: "g".into(),
            rank: 0,
            tp: 1,
            kv_free_bytes: 0,
            replay_prefix_allocs: prefix,
            replay_ops: ops,
            labels: HashMap::new(),
            permanent_contents: vec![],
            permanent_ptr_tables: vec![],
            graphs: vec![],
            stats: AnalysisStats::default(),
            checksum: 0,
        }
    }

    #[test]
    fn replay_rebuilds_layout_and_detects_misalignment() {
        let mut rt = empty_rt();
        // "Structure init": two natural allocations.
        let a = rt.cuda_malloc(256, AllocTag::Weights).unwrap();
        let _b = rt.cuda_malloc(512, AllocTag::Weights).unwrap();
        let art = artifact(
            2,
            vec![
                ReplayOp::Malloc { size: 1024 },
                ReplayOp::Free { alloc_seq: 2 },
                ReplayOp::Malloc { size: 1024 },
            ],
        );
        let (layout, d) = replay_allocations(&mut rt, &art).unwrap();
        assert_eq!(layout.ptr(0), Some(a));
        assert!(
            layout.ptr(2).is_none(),
            "freed replay alloc removed from map"
        );
        assert!(layout.ptr(3).is_some());
        assert!(d.as_nanos() > 0);

        // Misaligned prefix: a third natural allocation.
        let mut rt2 = empty_rt();
        rt2.cuda_malloc(256, AllocTag::Weights).unwrap();
        let err = replay_allocations(&mut rt2, &art).unwrap_err();
        assert!(matches!(
            err,
            MedusaError::ReplayMisaligned {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn dangling_free_is_detected() {
        let mut rt = empty_rt();
        let art = artifact(0, vec![ReplayOp::Free { alloc_seq: 7 }]);
        assert!(matches!(
            replay_allocations(&mut rt, &art),
            Err(MedusaError::ReplayDanglingFree { alloc_seq: 7 })
        ));
    }

    #[test]
    fn permanent_contents_are_restored() {
        let mut rt = empty_rt();
        let mut art = artifact(0, vec![ReplayOp::Malloc { size: 4 }]);
        art.permanent_contents = vec![(0, [9u8; 16])];
        let (layout, _) = replay_allocations(&mut rt, &art).unwrap();
        let p = layout.ptr(0).unwrap();
        assert_eq!(rt.memory().read_digest(p.addr()).unwrap(), [9u8; 16]);
    }

    #[test]
    fn labels_resolve_after_replay() {
        let mut rt = empty_rt();
        let mut art = artifact(0, vec![ReplayOp::Malloc { size: 64 }]);
        art.labels.insert("kv.key".into(), 0);
        let (layout, _) = replay_allocations(&mut rt, &art).unwrap();
        assert!(layout.label("kv.key").is_ok());
        assert!(matches!(
            layout.label("nope"),
            Err(MedusaError::MissingLabel { .. })
        ));
    }
}
