//! The offline **analysis stage** (paper §3, §4.1, §4.3, §5).
//!
//! Synthesizes the capturing stage's outputs into a [`MaterializedState`]:
//!
//! * walks the interleaved alloc/free/launch trace with a live allocation
//!   map, rewriting every data-pointer parameter as an **indirect index
//!   pointer** (trace-based matching — immune to the Figure 6 address-reuse
//!   false positives);
//! * keeps constants by value;
//! * replaces kernel addresses with mangled names + libraries;
//! * classifies buffers into model-parameter / temporary / permanent and
//!   materializes **only permanent contents** (copy-free restoration).

use crate::artifact::{
    AnalysisStats, GraphSpec, MaterializedState, NodeSpec, ParamSpec, PtrTableEntry, ReplayOp,
    ARTIFACT_VERSION,
};
use crate::error::{MedusaError, MedusaResult};
use crate::offline::capture::CaptureOutput;
use crate::trace::TraceWalker;
use medusa_gpu::{CostModel, DevicePtr, SimDuration, TraceEvent};
use std::collections::HashSet;

/// Output of the analysis stage: the artifact plus its simulated duration
/// (Fig. 9's analysis bar).
#[derive(Debug)]
pub struct AnalysisOutput {
    /// The materialized state to persist.
    pub state: MaterializedState,
    /// Simulated analysis duration.
    pub duration: SimDuration,
}

/// Runs the analysis stage over a capturing stage's output.
///
/// # Errors
///
/// Returns [`MedusaError::UnmatchedPointer`] if a graph parameter looks like
/// a device pointer but matches no live allocation at its launch position
/// (would indicate a broken trace).
pub fn analyze(capture: &CaptureOutput, cost: &CostModel) -> MedusaResult<AnalysisOutput> {
    let mut walker = TraceWalker::new();
    let mut stats = AnalysisStats::default();
    let mut replay_ops = Vec::new();
    let mut replay_prefix_allocs = 0u64;
    let mut stage_start_seq = u64::MAX;
    let mut freed_seqs: HashSet<u64> = HashSet::new();

    // Window bookkeeping: windows are disjoint and ordered.
    let mut graphs: Vec<GraphSpec> = capture
        .windows
        .iter()
        .map(|w| GraphSpec {
            batch: w.batch,
            nodes: Vec::new(),
            edges: Vec::new(),
        })
        .collect();
    let mut widx = 0usize;

    for (pos, ev) in capture.trace.iter().enumerate() {
        if pos == capture.stage_start_pos {
            stage_start_seq = walker.history().len() as u64;
        }
        match ev {
            // Device-side allocations (§8) enter the sequence exactly like
            // host allocations once the compilation-pass interception makes
            // them visible; replay recreates them host-side.
            TraceEvent::Alloc { seq, addr, size } | TraceEvent::DeviceAlloc { seq, addr, size } => {
                walker.on_alloc(*seq, *addr, *size);
                if pos < capture.replay_start_pos {
                    replay_prefix_allocs += 1;
                } else if pos < capture.capture_end_pos {
                    replay_ops.push(ReplayOp::Malloc { size: *size });
                }
            }
            TraceEvent::Free { addr, .. } => {
                if let Some(seq) = walker.on_free(*addr) {
                    freed_seqs.insert(seq);
                    if (capture.replay_start_pos..capture.capture_end_pos).contains(&pos) {
                        replay_ops.push(ReplayOp::Free { alloc_seq: seq });
                    }
                }
            }
            TraceEvent::Launch {
                kernel_addr,
                params,
            } => {
                // Advance to the window containing pos, if any.
                while widx < capture.windows.len() && pos >= capture.windows[widx].trace_end {
                    widx += 1;
                }
                let Some(w) = capture.windows.get(widx) else {
                    continue;
                };
                if pos < w.trace_start {
                    continue; // warm-up launch outside any capture
                }
                let node_idx = graphs[widx].nodes.len();
                let info = capture
                    .kernel_info
                    .get(kernel_addr)
                    .expect("capture resolved every node kernel");
                let mut pspecs = Vec::with_capacity(params.param_count());
                for i in 0..params.param_count() {
                    let size = params.size_of(i);
                    let value = params.value(i);
                    let looks_ptr = size == 8 && DevicePtr::has_device_prefix(value);
                    if looks_ptr {
                        match walker.resolve(value) {
                            Some((alloc_seq, offset)) => {
                                stats.pointer_params += 1;
                                if walker.base_reuse_count(value - offset) > 1 {
                                    stats.multi_match_pointers += 1;
                                }
                                pspecs.push(ParamSpec::IndirectPtr {
                                    alloc_seq,
                                    offset,
                                    raw: value,
                                });
                                continue;
                            }
                            None => {
                                return Err(MedusaError::UnmatchedPointer {
                                    batch: w.batch,
                                    node: node_idx,
                                    param: i,
                                    addr: value,
                                });
                            }
                        }
                    }
                    stats.const_params += 1;
                    pspecs.push(ParamSpec::Const {
                        bytes: value.to_le_bytes()[..size as usize].to_vec(),
                    });
                }
                let node = w.graph.node(node_idx);
                debug_assert_eq!(node.kernel_addr(), *kernel_addr);
                stats.nodes += 1;
                if info.exported {
                    stats.dlsym_restorable_nodes += 1;
                } else {
                    stats.hidden_kernel_nodes += 1;
                }
                graphs[widx].nodes.push(NodeSpec {
                    kernel: info.name.clone(),
                    library: info.library.clone(),
                    exported: info.exported,
                    params: pspecs,
                    work: node.work(),
                    stream: w.graph.stream_of(node_idx),
                });
            }
        }
    }

    // Copy edges and check node counts.
    for (g, w) in graphs.iter_mut().zip(&capture.windows) {
        debug_assert_eq!(g.nodes.len(), w.graph.node_count());
        g.edges = w
            .graph
            .edges()
            .iter()
            .map(|&(s, d)| (s as u32, d as u32))
            .collect();
    }

    // Buffer-role classification over every referenced allocation (§4.3).
    let mut referenced: HashSet<u64> = HashSet::new();
    for g in &graphs {
        for n in &g.nodes {
            for p in &n.params {
                if let ParamSpec::IndirectPtr { alloc_seq, .. } = p {
                    referenced.insert(*alloc_seq);
                }
            }
        }
    }
    let mut permanent_contents = Vec::new();
    let mut permanent_ptr_tables = Vec::new();
    // Worklist: pointer tables (§8) make their targets referenced too,
    // transitively.
    let mut worklist: Vec<u64> = referenced.iter().copied().collect();
    worklist.sort_unstable();
    let mut classified: HashSet<u64> = HashSet::new();
    while let Some(seq) = worklist.pop() {
        if !classified.insert(seq) {
            continue;
        }
        if seq < stage_start_seq {
            // Allocated before the capturing stage: model parameters, KV
            // cache, workspace — contents restored by their own stages.
            stats.param_buffers += 1;
        } else if freed_seqs.contains(&seq) {
            // Deallocated after capturing: temporary (§4.3).
            stats.temp_buffers += 1;
        } else {
            stats.permanent_buffers += 1;
            let digest = capture
                .final_contents
                .get(&seq)
                .copied()
                .expect("permanent buffers are live at snapshot time");
            permanent_contents.push((seq, digest));
            // Indirect pointers (§8): a permanent buffer holding a pointer
            // table is materialized entry-by-entry as indirect indices, and
            // its targets become referenced buffers themselves.
            if let Some(table) = capture.final_ptr_tables.get(&seq) {
                let entries = table
                    .iter()
                    .enumerate()
                    .map(|(i, &addr)| {
                        walker
                            .resolve(addr)
                            .map(|(alloc_seq, offset)| PtrTableEntry { alloc_seq, offset })
                            .ok_or(MedusaError::UnmatchedTableEntry {
                                table_seq: seq,
                                index: i,
                                addr,
                            })
                    })
                    .collect::<MedusaResult<Vec<_>>>()?;
                worklist.extend(entries.iter().map(|e| e.alloc_seq));
                permanent_ptr_tables.push((seq, entries));
            }
        }
    }
    permanent_contents.sort_by_key(|(seq, _)| *seq);
    permanent_ptr_tables.sort_by_key(|(seq, _)| *seq);

    let duration = SimDuration::from_nanos(cost.analysis_per_node_ns * stats.nodes);
    let mut state = MaterializedState {
        version: ARTIFACT_VERSION,
        model: capture.model.clone(),
        gpu: capture.gpu.clone(),
        rank: capture.rank,
        tp: capture.tp,
        kv_free_bytes: capture.kv_free_bytes,
        replay_prefix_allocs,
        replay_ops,
        labels: capture.labels.clone(),
        permanent_contents,
        permanent_ptr_tables,
        graphs,
        stats,
        checksum: 0,
    };
    state.seal();
    Ok(AnalysisOutput { state, duration })
}

/// Naive-matching ablation (Figure 6): how many graph pointer parameters
/// would a whole-history first-match strategy resolve to a *different*
/// allocation index than trace-based matching? Each difference is a
/// potential data corruption.
pub fn count_naive_mismatches(capture: &CaptureOutput) -> u64 {
    let mut walker = TraceWalker::new();
    let mut mismatches = 0u64;
    let mut widx = 0usize;
    for (pos, ev) in capture.trace.iter().enumerate() {
        match ev {
            TraceEvent::Alloc { seq, addr, size } | TraceEvent::DeviceAlloc { seq, addr, size } => {
                walker.on_alloc(*seq, *addr, *size)
            }
            TraceEvent::Free { addr, .. } => {
                walker.on_free(*addr);
            }
            TraceEvent::Launch { params, .. } => {
                while widx < capture.windows.len() && pos >= capture.windows[widx].trace_end {
                    widx += 1;
                }
                let Some(w) = capture.windows.get(widx) else {
                    continue;
                };
                if pos < w.trace_start {
                    continue;
                }
                for i in 0..params.param_count() {
                    let v = params.value(i);
                    if params.size_of(i) == 8 && DevicePtr::has_device_prefix(v) {
                        if let (Some(correct), Some(naive)) =
                            (walker.resolve(v), walker.naive_first_match(v))
                        {
                            if correct.0 != naive.0 {
                                mismatches += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::capture::run_offline_capture;
    use medusa_gpu::GpuSpec;
    use medusa_model::ModelSpec;

    fn analyzed() -> AnalysisOutput {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let cap =
            run_offline_capture(&spec, GpuSpec::a100_40gb(), CostModel::default(), 21).unwrap();
        analyze(&cap, &CostModel::default()).unwrap()
    }

    #[test]
    fn artifact_matches_table1_and_classifies_params() {
        let out = analyzed();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        assert_eq!(out.state.total_nodes(), spec.table1_nodes());
        assert_eq!(out.state.graphs.len(), 35);
        assert!(out.state.stats.pointer_params > 0);
        assert!(out.state.stats.const_params > 0);
        assert!(out.state.stats.dlsym_restorable_nodes > 0);
        assert!(out.state.stats.hidden_kernel_nodes > 0);
        // Exported fraction should be in the paper's ballpark (69.2% for
        // Llama2 13B b=1; ours is schedule-wide).
        let frac = out.state.stats.dlsym_restorable_nodes as f64 / out.state.stats.nodes as f64;
        assert!(
            (0.4..0.8).contains(&frac),
            "dlsym-restorable fraction {frac}"
        );
    }

    #[test]
    fn permanent_buffers_are_the_magic_pairs() {
        let out = analyzed();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        // Two 4-byte magic buffers per layer (paper §4.3: each ~9% kernel
        // needs two 4-byte permanent buffers).
        assert_eq!(out.state.stats.permanent_buffers, 2 * spec.layers() as u64);
        assert_eq!(
            out.state.permanent_contents.len(),
            2 * spec.layers() as usize
        );
        // The reshape_and_cache kernels are ~1/10 of nodes — the paper's 9%.
        let reshape_nodes = out
            .state
            .graphs
            .iter()
            .flat_map(|g| &g.nodes)
            .filter(|n| n.kernel.contains("reshape_and_cache"))
            .count() as f64;
        let frac = reshape_nodes / out.state.stats.nodes as f64;
        assert!(
            (0.05..0.13).contains(&frac),
            "permanent-buffer kernel fraction {frac}"
        );
    }

    #[test]
    fn temp_and_param_buffers_are_skipped() {
        let out = analyzed();
        assert!(
            out.state.stats.param_buffers > 0,
            "weights/kv/ws referenced"
        );
        assert!(out.state.stats.temp_buffers > 0, "graph scratch is temp");
        // Copy-free: permanent contents are tiny compared to weights.
        let content_bytes = out.state.permanent_contents.len() * 16;
        assert!(content_bytes < 4096);
    }

    #[test]
    fn replay_ops_cover_post_structure_allocations() {
        let out = analyzed();
        assert!(out.state.replay_prefix_allocs > 0);
        let mallocs = out
            .state
            .replay_ops
            .iter()
            .filter(|o| matches!(o, ReplayOp::Malloc { .. }))
            .count();
        let frees = out
            .state
            .replay_ops
            .iter()
            .filter(|o| matches!(o, ReplayOp::Free { .. }))
            .count();
        assert!(
            mallocs > frees,
            "persistent buffers outlive the replay range"
        );
        assert!(frees > 0, "profiling temporaries must be freed in-replay");
    }

    #[test]
    fn address_reuse_occurs_and_naive_matching_would_corrupt() {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        let cap =
            run_offline_capture(&spec, GpuSpec::a100_40gb(), CostModel::default(), 22).unwrap();
        let out = analyze(&cap, &CostModel::default()).unwrap();
        assert!(
            out.state.stats.multi_match_pointers > 0,
            "allocator reuse must create Fig. 6 multi-match hazards"
        );
        assert!(
            count_naive_mismatches(&cap) > 0,
            "naive whole-history matching must disagree somewhere"
        );
    }

    #[test]
    fn analysis_duration_scales_with_nodes() {
        let out = analyzed();
        let expected = CostModel::default().analysis_per_node_ns * out.state.stats.nodes;
        assert_eq!(out.duration.as_nanos(), expected);
        // Fig. 9: analysis dominates the sub-minute offline phase.
        assert!(out.duration.as_secs_f64() < 60.0);
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let out = analyzed();
        let s = out.state.to_json().unwrap();
        let back = MaterializedState::from_json(&s).unwrap();
        assert_eq!(back, out.state);
    }
}
