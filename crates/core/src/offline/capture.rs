//! The offline **capturing stage** (paper §3, Figure 5 left).
//!
//! Runs one fully instrumented vanilla cold start: every `cudaMalloc`,
//! `cudaFree` and `cudaLaunchKernel` is intercepted into a trace, the
//! profiling forwarding's available-memory figure is recorded, and all 35
//! decode graphs are captured. The output feeds the analysis stage.

use crate::error::MedusaResult;
use medusa_gpu::{CostModel, Digest, GpuSpec, ProcessRuntime, SimDuration, TraceEvent};
use medusa_graph::CudaGraph;
use medusa_kvcache::kv_cache_init_stage;
use medusa_model::{
    build_catalog, capture_decode_graph, load_weights, warmup_decode, ModelInstance, ModelSpec,
    Tokenizer,
};
use std::collections::HashMap;

/// One captured graph plus its trace window.
#[derive(Debug)]
pub struct GraphWindow {
    /// The decode batch size.
    pub batch: u32,
    /// Trace position where the capture began.
    pub trace_start: usize,
    /// Trace position where the capture ended.
    pub trace_end: usize,
    /// The captured graph (offline addresses).
    pub graph: CudaGraph,
}

/// Offline-resolved identity of a kernel address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Mangled name.
    pub name: String,
    /// Owning dynamic library.
    pub library: String,
    /// Whether `dlsym` can see it (probed for real during capture).
    pub exported: bool,
}

/// Everything the capturing stage hands to the analysis stage.
#[derive(Debug)]
pub struct CaptureOutput {
    /// Model the run served.
    pub model: String,
    /// GPU the run used.
    pub gpu: String,
    /// Tensor-parallel rank of the run (0 for single GPU).
    pub rank: u32,
    /// Tensor-parallel degree of the run (1 for single GPU).
    pub tp: u32,
    /// The full interception trace (including teardown frees).
    pub trace: Vec<TraceEvent>,
    /// Trace position where the replayable (de)allocation sequence begins
    /// (right after model structure initialization).
    pub replay_start_pos: usize,
    /// Trace position at the start of the capturing stage (buffer-role
    /// classification boundary, §4.3).
    pub stage_start_pos: usize,
    /// Trace position at the end of the last capture (replay ops stop here;
    /// teardown frees come after).
    pub capture_end_pos: usize,
    /// Captured graphs with their trace windows, ascending batch size.
    pub windows: Vec<GraphWindow>,
    /// Offline kernel address → identity.
    pub kernel_info: HashMap<u64, KernelInfo>,
    /// Final content digests of all live buffers, keyed by allocation
    /// sequence index (the analysis picks the permanent ones).
    pub final_contents: HashMap<u64, Digest>,
    /// Final pointer-table contents of live buffers (indirect pointers, §8),
    /// keyed by allocation sequence index.
    pub final_ptr_tables: HashMap<u64, Vec<u64>>,
    /// The profiled available free GPU memory (§6).
    pub kv_free_bytes: u64,
    /// Semantic buffer label → allocation sequence index.
    pub labels: HashMap<String, u64>,
    /// Simulated duration of the whole capturing stage (Fig. 9).
    pub duration: SimDuration,
}

/// Runs the instrumented offline cold start for `spec` on `gpu`.
///
/// # Errors
///
/// Propagates driver, KV and capture errors.
pub fn run_offline_capture(
    spec: &ModelSpec,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<CaptureOutput> {
    run_offline_capture_sharded(spec, 0, 1, gpu, cost, seed)
}

/// Like [`run_offline_capture`] for one tensor-parallel shard (paper §8
/// multi-GPU support): rank `rank` of a `tp`-way instance runs its own
/// instrumented cold start and produces its own indirect index pointer
/// table.
///
/// # Errors
///
/// Propagates driver, KV and capture errors.
pub fn run_offline_capture_sharded(
    spec: &ModelSpec,
    rank: u32,
    tp: u32,
    gpu: GpuSpec,
    cost: CostModel,
    seed: u64,
) -> MedusaResult<CaptureOutput> {
    let mut rt = ProcessRuntime::new(build_catalog(spec), gpu, cost, seed);
    rt.enable_tracing();
    let t0 = rt.now();

    // ❶–❸ structure init, weights, tokenizer (vanilla order).
    let mut inst = ModelInstance::initialize_sharded(&mut rt, spec, rank, tp)?;
    load_weights(&mut rt, &inst, 1.0)?;
    let (_tok, tok_dur) = Tokenizer::load(spec.vocab(), rt.cost());
    rt.advance(tok_dur);

    // Everything after structure init must be replayed online.
    let replay_start_pos = rt.trace_len();

    // ❹ KV cache initialization (profiling forwarding + allocation).
    let (kv_cache, kv_free_bytes) = kv_cache_init_stage(&mut rt, &mut inst)?;
    let kv_view = kv_cache.view();

    // Engine setup: persistent decode workspace.
    inst.ensure_workspace(&mut rt)?;

    // ❺ capturing stage: warm-up + capture for all 35 batch sizes.
    let stage_start_pos = rt.trace_len();
    let mut windows = Vec::new();
    for (gi, batch) in ModelSpec::capture_batch_sizes().into_iter().enumerate() {
        warmup_decode(&mut rt, &mut inst, batch, &kv_view)?;
        let trace_start = rt.trace_len();
        let graph = capture_decode_graph(&mut rt, &mut inst, batch, &kv_view, gi)?;
        let trace_end = rt.trace_len();
        windows.push(GraphWindow {
            batch,
            trace_start,
            trace_end,
            graph,
        });
    }
    let capture_end_pos = rt.trace_len();

    // Materialize-to-storage cost of dumping node state (Fig. 9).
    let total_nodes: u64 = windows.iter().map(|w| w.graph.node_count() as u64).sum();
    rt.advance(SimDuration::from_nanos(
        rt.cost().materialize_dump_per_node_ns * total_nodes,
    ));

    // Resolve kernel identities: `cuFuncGetName` plus a real dlsym probe.
    let mut kernel_info = HashMap::new();
    for w in &windows {
        for node in w.graph.iter() {
            let addr = node.kernel_addr();
            if kernel_info.contains_key(&addr) {
                continue;
            }
            let name = rt.cu_func_get_name(addr)?.to_string();
            let kref = rt
                .resolve_addr(addr)
                .expect("name resolved implies known addr");
            let library = rt.catalog().lib(kref.lib as usize).name().to_string();
            let handle = rt.dlopen(&library)?;
            let exported = match rt.dlsym(handle, &name) {
                Ok(_) => true,
                Err(medusa_gpu::GpuError::SymbolHidden { .. }) => false,
                Err(e) => return Err(e.into()),
            };
            kernel_info.insert(
                addr,
                KernelInfo {
                    name,
                    library,
                    exported,
                },
            );
        }
    }

    // Semantic labels → allocation sequence indices.
    let mut labels = HashMap::new();
    for (name, ptr) in inst.labeled_buffers() {
        let seq = rt
            .memory()
            .containing(ptr.addr())
            .expect("labelled buffers live")
            .seq();
        labels.insert(name, seq);
    }
    for (name, ptr) in [
        ("kv.key", kv_view.kcache),
        ("kv.value", kv_view.vcache),
        ("kv.block_table", kv_view.block_table),
    ] {
        let seq = rt
            .memory()
            .containing(ptr.addr())
            .expect("kv buffers live")
            .seq();
        labels.insert(name.to_string(), seq);
    }

    // Snapshot final contents of live buffers (by allocation index).
    let mut final_contents = HashMap::new();
    let mut final_ptr_tables = HashMap::new();
    let live: Vec<(u64, u64)> = rt
        .memory()
        .iter()
        .map(|a| (a.seq(), a.base().addr()))
        .collect();
    for (seq, addr) in live {
        final_contents.insert(seq, rt.memory().read_digest(addr)?);
        let table = rt.memory().read_ptr_table(addr)?;
        if !table.is_empty() {
            final_ptr_tables.insert(seq, table.to_vec());
        }
    }

    // Engine teardown: scratch frees land in the trace *after*
    // capture_end_pos, which is what classifies them as temporary (§4.3).
    inst.release_graph_scratch(&mut rt)?;

    let duration = rt.now().since(t0);
    Ok(CaptureOutput {
        model: spec.name().to_string(),
        gpu: rt.spec().name().to_string(),
        rank,
        tp,
        trace: rt.take_trace(),
        replay_start_pos,
        stage_start_pos,
        capture_end_pos,
        windows,
        kernel_info,
        final_contents,
        final_ptr_tables,
        kv_free_bytes,
        labels,
        duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_model::schedule;

    fn capture_small() -> CaptureOutput {
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        run_offline_capture(&spec, GpuSpec::a100_40gb(), CostModel::default(), 11).unwrap()
    }

    #[test]
    fn capture_produces_35_windows_with_table1_nodes() {
        let out = capture_small();
        let spec = ModelSpec::by_name("Qwen1.5-0.5B").unwrap();
        assert_eq!(out.windows.len(), 35);
        let total: u64 = out
            .windows
            .iter()
            .map(|w| w.graph.node_count() as u64)
            .sum();
        assert_eq!(total, spec.table1_nodes(), "Table 1 node count");
        for (i, w) in out.windows.iter().enumerate() {
            assert_eq!(
                w.graph.node_count() as u64,
                schedule::nodes_for_graph(&spec, i)
            );
            assert!(w.trace_start < w.trace_end);
        }
    }

    #[test]
    fn trace_markers_are_ordered() {
        let out = capture_small();
        assert!(out.replay_start_pos > 0);
        assert!(out.replay_start_pos <= out.stage_start_pos);
        assert!(out.stage_start_pos < out.capture_end_pos);
        assert!(out.capture_end_pos <= out.trace.len());
        // Teardown frees exist after capture end.
        assert!(out.trace[out.capture_end_pos..]
            .iter()
            .any(|e| matches!(e, TraceEvent::Free { .. })));
    }

    #[test]
    fn kernel_info_flags_hidden_gemms() {
        let out = capture_small();
        let hidden: Vec<_> = out
            .kernel_info
            .values()
            .filter(|k| !k.exported)
            .map(|k| k.name.clone())
            .collect();
        assert!(
            hidden.iter().any(|n| n.contains("gemm")),
            "GEMMs must be hidden"
        );
        let exported: Vec<_> = out
            .kernel_info
            .values()
            .filter(|k| k.exported)
            .map(|k| k.name.clone())
            .collect();
        assert!(exported.iter().any(|n| n.contains("rms_norm")));
        // Exported fraction in the paper's ballpark (69.2% of *nodes* for
        // Llama2 13B; here we only check both classes exist).
        assert!(!hidden.is_empty() && !exported.is_empty());
    }

    #[test]
    fn labels_cover_kv_workspace_and_magic() {
        let out = capture_small();
        for needed in [
            "kv.key",
            "kv.value",
            "kv.block_table",
            "ws.ids",
            "ws.logits",
            "magic.0.a",
        ] {
            assert!(out.labels.contains_key(needed), "missing label {needed}");
        }
    }

    #[test]
    fn capture_duration_scales_like_figure9() {
        let out = capture_small();
        let secs = out.duration.as_secs_f64();
        // Fig. 9: capturing stage averages ~9.7 s (a full cold start plus
        // per-node dump cost).
        assert!(
            (3.0..20.0).contains(&secs),
            "capturing stage {secs}s out of band"
        );
    }

    #[test]
    fn profiled_free_memory_is_positive_and_below_capacity() {
        let out = capture_small();
        assert!(out.kv_free_bytes > 0);
        assert!(out.kv_free_bytes < 40 * (1 << 30));
    }
}
