//! CUDA stream and event bookkeeping.
//!
//! Streams model the asynchronous GPU work queue: the CPU-side clock runs
//! ahead while each stream tracks the instant its queued work drains. Events
//! provide cross-stream ordering, and double as dependency anchors during
//! stream capture.

use crate::clock::SimTime;
use crate::error::{GpuError, GpuResult};

/// Identifier of a CUDA stream within one process.
pub type StreamId = u32;

/// Identifier of a CUDA event within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u32);

/// The per-process stream pool.
#[derive(Debug, Clone)]
pub struct StreamPool {
    free_at: Vec<SimTime>,
}

impl StreamPool {
    /// Creates `count` streams, all idle at time zero.
    pub fn new(count: usize) -> Self {
        StreamPool {
            free_at: vec![SimTime::ZERO; count.max(1)],
        }
    }

    /// Number of streams.
    pub fn count(&self) -> usize {
        self.free_at.len()
    }

    /// The instant stream `id` drains its queued work.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidStream`] for unknown ids.
    pub fn free_at(&self, id: StreamId) -> GpuResult<SimTime> {
        self.free_at
            .get(id as usize)
            .copied()
            .ok_or(GpuError::InvalidStream { stream: id })
    }

    /// Updates the drain instant of stream `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidStream`] for unknown ids.
    pub fn set_free_at(&mut self, id: StreamId, t: SimTime) -> GpuResult<()> {
        match self.free_at.get_mut(id as usize) {
            Some(slot) => {
                *slot = t;
                Ok(())
            }
            None => Err(GpuError::InvalidStream { stream: id }),
        }
    }

    /// The instant *all* streams are drained (used by device synchronize).
    pub fn all_free_at(&self) -> SimTime {
        self.free_at.iter().copied().max().unwrap_or(SimTime::ZERO)
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct EventState {
    /// Completion time recorded in eager mode.
    pub completes_at: Option<SimTime>,
    /// Index of the captured launch this event anchors to, in capture mode.
    pub capture_node: Option<usize>,
}

/// The per-process event table.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    events: Vec<EventState>,
}

impl EventTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new event.
    pub fn create(&mut self) -> EventId {
        self.events.push(EventState::default());
        EventId(self.events.len() as u32 - 1)
    }

    pub(crate) fn get(&self, id: EventId) -> GpuResult<&EventState> {
        self.events
            .get(id.0 as usize)
            .ok_or(GpuError::InvalidEvent { event: id.0 })
    }

    pub(crate) fn get_mut(&mut self, id: EventId) -> GpuResult<&mut EventState> {
        self.events
            .get_mut(id.0 as usize)
            .ok_or(GpuError::InvalidEvent { event: id.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn pool_tracks_per_stream_drain() {
        let mut p = StreamPool::new(2);
        assert_eq!(p.count(), 2);
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        p.set_free_at(1, t).unwrap();
        assert_eq!(p.free_at(0).unwrap(), SimTime::ZERO);
        assert_eq!(p.free_at(1).unwrap(), t);
        assert_eq!(p.all_free_at(), t);
        assert!(matches!(
            p.free_at(7),
            Err(GpuError::InvalidStream { stream: 7 })
        ));
        assert!(matches!(
            p.set_free_at(7, t),
            Err(GpuError::InvalidStream { .. })
        ));
    }

    #[test]
    fn zero_stream_pool_still_has_default_stream() {
        let p = StreamPool::new(0);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn event_table_create_and_lookup() {
        let mut t = EventTable::new();
        let e0 = t.create();
        let e1 = t.create();
        assert_ne!(e0, e1);
        t.get_mut(e0).unwrap().capture_node = Some(3);
        assert_eq!(t.get(e0).unwrap().capture_node, Some(3));
        assert!(t.get(EventId(99)).is_err());
    }
}
