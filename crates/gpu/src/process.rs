//! The simulated process runtime: one cold-start's view of the GPU driver.
//!
//! A [`ProcessRuntime`] corresponds to one launch of a serving instance. It
//! owns the virtual clock, the device memory view, the per-launch ASLR bases
//! of every shared library, the driver's module-loading state, stream/event
//! state, an optional stream capture, and an optional interception trace
//! (the hook Medusa's offline phase uses to record the allocation and launch
//! sequences, paper §3/§4.1).
//!
//! Two runtimes constructed with different seeds observe **different kernel
//! addresses and different device pointers** for the same control flow —
//! which is exactly why Medusa cannot blindly dump and reload CUDA graphs.

use crate::clock::{CostModel, SimDuration, SimTime, VirtualClock};
use crate::error::{GpuError, GpuResult};
use crate::kernel::{KernelRef, ParamBuffer, Work};
use crate::library::LibraryCatalog;
use crate::memory::{AllocTag, DeviceMemory, DevicePtr, Digest};
use crate::stream::{EventId, EventTable, StreamId, StreamPool};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Base of the simulated code address range (shared library mappings).
/// Distinct from [`crate::memory::DEVICE_REGION_BASE`] so device-pointer
/// heuristics never match kernel addresses.
const CODE_REGION_BASE: u64 = 0x0000_5f00_0000_0000;
const CODE_ASLR_WINDOW: u64 = 1 << 34;
const LIB_SPACING: u64 = 1 << 32;

/// Static description of the GPU hardware.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuSpec {
    name: String,
    total_mem: u64,
}

impl GpuSpec {
    /// Creates a GPU spec.
    pub fn new(name: impl Into<String>, total_mem: u64) -> Self {
        GpuSpec {
            name: name.into(),
            total_mem,
        }
    }

    /// The paper's A100-40GB SXM4.
    pub fn a100_40gb() -> Self {
        GpuSpec::new("A100-40GB-SXM4", 40 * (1 << 30))
    }

    /// Marketing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total device memory in bytes.
    pub fn total_mem(&self) -> u64 {
        self.total_mem
    }
}

/// Handle returned by [`ProcessRuntime::dlopen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibHandle(pub(crate) usize);

/// Host-side function symbol returned by [`ProcessRuntime::dlsym`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSymbol {
    kref: KernelRef,
}

/// Handle to a driver-loaded CUDA module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleHandle {
    /// Library index in the catalog.
    pub lib: u16,
    /// Module index within the library.
    pub module: u16,
}

/// One kernel launch recorded by an active stream capture, before it is
/// assembled into a CUDA graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedLaunch {
    /// The (per-process) device function address.
    pub kernel_addr: u64,
    /// Raw parameter buffer as launched.
    pub params: ParamBuffer,
    /// The launch's work size (grid-dim equivalent).
    pub work: Work,
    /// Stream the launch was issued on.
    pub stream: StreamId,
    /// Indices of captured launches this one depends on.
    pub deps: Vec<usize>,
}

/// One event in the interception trace consumed by Medusa's offline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `cudaMalloc` returned `addr` for the `seq`-th allocation.
    Alloc {
        /// Global allocation sequence index.
        seq: u64,
        /// Returned base address.
        addr: u64,
        /// Rounded size in bytes.
        size: u64,
    },
    /// `cudaFree` released the allocation based at `addr`.
    Free {
        /// Freed base address.
        addr: u64,
        /// Size of the freed allocation.
        size: u64,
    },
    /// `cudaLaunchKernel` was intercepted.
    Launch {
        /// Device function address at launch time.
        kernel_addr: u64,
        /// Raw parameters at launch time.
        params: ParamBuffer,
    },
    /// A **device-side** allocation performed inside a kernel, made visible
    /// by the compilation-pass interception of paper §8. Only recorded when
    /// [`ProcessRuntime::set_intercept_device_allocs`] is enabled.
    DeviceAlloc {
        /// Global allocation sequence index.
        seq: u64,
        /// Returned base address.
        addr: u64,
        /// Rounded size in bytes.
        size: u64,
    },
}

#[derive(Debug)]
struct CaptureState {
    origin_stream: StreamId,
    launches: Vec<CapturedLaunch>,
    stream_last: HashMap<StreamId, usize>,
    pending_event_deps: HashMap<StreamId, Vec<usize>>,
}

/// The per-launch simulated process runtime. See the module docs.
#[derive(Debug)]
pub struct ProcessRuntime {
    catalog: Arc<LibraryCatalog>,
    spec: GpuSpec,
    cost: CostModel,
    clock: VirtualClock,
    memory: DeviceMemory,
    lib_bases: Vec<Option<u64>>,
    lib_initialized: Vec<bool>,
    module_loaded: Vec<Vec<bool>>,
    addr_to_kernel: HashMap<u64, KernelRef>,
    streams: StreamPool,
    events: EventTable,
    capture: Option<CaptureState>,
    trace: Option<Vec<TraceEvent>>,
    intercept_device_allocs: bool,
    seed: u64,
}

impl ProcessRuntime {
    /// Default number of streams available to a process.
    pub const DEFAULT_STREAMS: usize = 4;

    /// Boots a fresh process against `catalog` on `spec` hardware.
    ///
    /// `seed` controls all per-launch non-determinism (library ASLR, device
    /// allocator base and reuse jitter).
    pub fn new(catalog: Arc<LibraryCatalog>, spec: GpuSpec, cost: CostModel, seed: u64) -> Self {
        let n_libs = catalog.len();
        let module_loaded = (0..n_libs)
            .map(|i| vec![false; catalog.lib(i).modules().len()])
            .collect();
        ProcessRuntime {
            memory: DeviceMemory::new(spec.total_mem(), seed),
            catalog,
            spec,
            cost,
            clock: VirtualClock::new(),
            lib_bases: vec![None; n_libs],
            lib_initialized: vec![false; n_libs],
            module_loaded,
            addr_to_kernel: HashMap::new(),
            streams: StreamPool::new(Self::DEFAULT_STREAMS),
            events: EventTable::new(),
            capture: None,
            trace: None,
            intercept_device_allocs: true,
            seed,
        }
    }

    // ---------------------------------------------------------------- basics

    /// The process seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The shared library catalog.
    pub fn catalog(&self) -> &Arc<LibraryCatalog> {
        &self.catalog
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances the CPU clock (used by higher layers for CPU-side work).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Moves the CPU clock forward to `t` (never rewinds).
    pub fn advance_to(&mut self, t: SimTime) {
        self.clock.advance_to(t);
    }

    /// The device memory view.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Mutable device memory view (tests and content setup).
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.memory
    }

    /// The instant all queued GPU work drains.
    pub fn gpu_idle_at(&self) -> SimTime {
        self.streams.all_free_at()
    }

    // ---------------------------------------------------------------- tracing

    /// Enables the interception trace (Medusa offline capturing stage).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Stops tracing and returns the recorded events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Whether interception is active.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Number of trace events recorded so far (used to delimit windows such
    /// as per-graph capture ranges).
    pub fn trace_len(&self) -> usize {
        self.trace.as_ref().map_or(0, Vec::len)
    }

    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    // ---------------------------------------------------------------- dl / driver

    /// `dlopen` a shared library by name, mapping its code at a per-launch
    /// randomized base. Idempotent (subsequent opens are cheap lookups).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::LibraryNotFound`] for unknown libraries.
    pub fn dlopen(&mut self, name: &str) -> GpuResult<LibHandle> {
        let idx = self.catalog.lib_index(name)?;
        if self.lib_bases[idx].is_none() {
            self.clock
                .advance(SimDuration::from_nanos(self.cost.dlopen_ns));
            let base = self.lib_base_for(idx);
            self.lib_bases[idx] = Some(base);
            // Map every kernel's address now; module *loading* stays lazy.
            let catalog = Arc::clone(&self.catalog);
            for (mi, m) in catalog.lib(idx).modules().iter().enumerate() {
                for (ki, _) in m.kernels().iter().enumerate() {
                    let kref = KernelRef {
                        lib: idx as u16,
                        module: mi as u16,
                        kernel: ki as u16,
                    };
                    self.addr_to_kernel.insert(Self::addr_of(base, kref), kref);
                }
            }
        } else {
            self.clock
                .advance(SimDuration::from_nanos(self.cost.dlsym_ns));
        }
        Ok(LibHandle(idx))
    }

    fn lib_base_for(&self, idx: usize) -> u64 {
        // splitmix64 over (seed, idx): per-launch, per-library ASLR.
        let mut x = self.seed ^ (idx as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        CODE_REGION_BASE + (idx as u64) * LIB_SPACING + ((x % CODE_ASLR_WINDOW) & !0xfff)
    }

    fn addr_of(base: u64, kref: KernelRef) -> u64 {
        base + ((kref.module as u64 + 1) << 20) + ((kref.kernel as u64 + 1) << 8)
    }

    /// `dlsym`: looks up an *exported* kernel symbol.
    ///
    /// # Errors
    ///
    /// * [`GpuError::LibraryNotLoaded`] if the library was never opened.
    /// * [`GpuError::SymbolHidden`] if the kernel exists but is not in the
    ///   dynamic symbol table (cuBLAS-like kernels, paper §5).
    /// * [`GpuError::SymbolNotFound`] if it does not exist at all.
    pub fn dlsym(&mut self, lib: LibHandle, symbol: &str) -> GpuResult<HostSymbol> {
        self.clock
            .advance(SimDuration::from_nanos(self.cost.dlsym_ns));
        let lib_name = self.catalog.lib(lib.0).name().to_string();
        if self.lib_bases[lib.0].is_none() {
            return Err(GpuError::LibraryNotLoaded { library: lib_name });
        }
        let kref = self.catalog.find_kernel(&lib_name, symbol)?;
        if !self.catalog.kernel(kref).exported() {
            return Err(GpuError::SymbolHidden {
                library: lib_name,
                symbol: symbol.to_string(),
            });
        }
        Ok(HostSymbol { kref })
    }

    /// `cudaGetFuncBySymbol`: resolves a host symbol to a device function
    /// address, loading its module if necessary (the exported-kernel
    /// restoration path of paper §5).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::SyncDuringCapture`] if the implied module load
    /// happens inside an active capture.
    pub fn cuda_get_func_by_symbol(&mut self, sym: HostSymbol) -> GpuResult<u64> {
        self.clock
            .advance(SimDuration::from_nanos(self.cost.get_func_by_symbol_ns));
        self.ensure_module_loaded(sym.kref)?;
        Ok(self.kernel_address(sym.kref).expect("library is open"))
    }

    fn ensure_module_loaded(&mut self, kref: KernelRef) -> GpuResult<()> {
        if self.module_loaded[kref.lib as usize][kref.module as usize] {
            return Ok(());
        }
        if self.capture.is_some() {
            self.capture = None;
            return Err(GpuError::SyncDuringCapture {
                origin: format!("module load `{}`", self.catalog.module(kref).name()),
            });
        }
        self.clock
            .advance(SimDuration::from_nanos(self.cost.module_load_ns));
        self.module_loaded[kref.lib as usize][kref.module as usize] = true;
        Ok(())
    }

    /// Handles of all modules the driver has loaded so far.
    pub fn loaded_modules(&self) -> Vec<ModuleHandle> {
        let mut out = Vec::new();
        for (li, mods) in self.module_loaded.iter().enumerate() {
            for (mi, &loaded) in mods.iter().enumerate() {
                if loaded {
                    out.push(ModuleHandle {
                        lib: li as u16,
                        module: mi as u16,
                    });
                }
            }
        }
        out
    }

    /// `cuModuleEnumerateFunctions`: all device function addresses of a
    /// loaded module (paper §5 — resolves *hidden* kernels too).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::ModuleNotLoaded`] if the driver has not loaded the
    /// module (this is why triggering-kernels are needed).
    pub fn cu_module_enumerate_functions(&mut self, h: ModuleHandle) -> GpuResult<Vec<u64>> {
        if !self.module_loaded[h.lib as usize][h.module as usize] {
            return Err(GpuError::ModuleNotLoaded {
                library: self.catalog.lib(h.lib as usize).name().to_string(),
                module: self.catalog.lib(h.lib as usize).modules()[h.module as usize]
                    .name()
                    .to_string(),
            });
        }
        let base = self.lib_bases[h.lib as usize].expect("loaded module implies open lib");
        let kernels = self.catalog.lib(h.lib as usize).modules()[h.module as usize].kernels();
        self.clock.advance(SimDuration::from_nanos(
            self.cost.module_enumerate_per_kernel_ns * kernels.len() as u64,
        ));
        Ok((0..kernels.len())
            .map(|ki| {
                Self::addr_of(
                    base,
                    KernelRef {
                        lib: h.lib,
                        module: h.module,
                        kernel: ki as u16,
                    },
                )
            })
            .collect())
    }

    /// `cuFuncGetName`: mangled name of a device function address.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidDeviceFunction`] for unknown addresses.
    pub fn cu_func_get_name(&self, addr: u64) -> GpuResult<&str> {
        let kref = self
            .addr_to_kernel
            .get(&addr)
            .ok_or(GpuError::InvalidDeviceFunction { addr })?;
        Ok(self.catalog.kernel(*kref).name())
    }

    /// Ground-truth address of a kernel in this process, if its library is
    /// open. (Test/diagnostic helper; production restoration goes through
    /// `dlsym`/enumeration.)
    pub fn kernel_address(&self, kref: KernelRef) -> Option<u64> {
        self.lib_bases[kref.lib as usize].map(|b| Self::addr_of(b, kref))
    }

    /// Resolves a device function address back to its catalog reference, if
    /// it is a mapped kernel address in this process.
    pub fn resolve_addr(&self, addr: u64) -> Option<KernelRef> {
        self.addr_to_kernel.get(&addr).copied()
    }

    /// Whether the module containing `kref` is currently loaded.
    pub fn is_module_loaded(&self, kref: KernelRef) -> bool {
        self.module_loaded[kref.lib as usize][kref.module as usize]
    }

    // ---------------------------------------------------------------- memory

    /// `cudaMalloc`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfMemory`] when capacity is exceeded.
    pub fn cuda_malloc(&mut self, size: u64, tag: AllocTag) -> GpuResult<DevicePtr> {
        self.clock
            .advance(SimDuration::from_nanos(self.cost.malloc_ns));
        let ptr = self.memory.alloc(size, tag)?;
        let alloc = *self.memory.containing(ptr.addr()).expect("just allocated");
        self.record(TraceEvent::Alloc {
            seq: alloc.seq(),
            addr: ptr.addr(),
            size: alloc.size(),
        });
        Ok(ptr)
    }

    /// `cudaFree`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidFree`] if `ptr` is not a live base.
    pub fn cuda_free(&mut self, ptr: DevicePtr) -> GpuResult<()> {
        self.clock
            .advance(SimDuration::from_nanos(self.cost.free_ns));
        let size = self.memory.free(ptr)?;
        self.record(TraceEvent::Free {
            addr: ptr.addr(),
            size,
        });
        Ok(())
    }

    /// Host-to-device copy of `bytes` into the buffer containing `dst`,
    /// setting the buffer's content digest and blocking the caller for the
    /// transfer duration.
    ///
    /// # Errors
    ///
    /// * [`GpuError::MemcpyDuringCapture`] inside a capture.
    /// * [`GpuError::InvalidPointer`] if `dst` is not a live buffer.
    pub fn memcpy_h2d(
        &mut self,
        dst: DevicePtr,
        bytes: u64,
        content: Digest,
    ) -> GpuResult<SimDuration> {
        if self.capture.is_some() {
            return Err(GpuError::MemcpyDuringCapture);
        }
        self.memory.write_digest(dst.addr(), content)?;
        let d = SimDuration::from_secs_f64(bytes as f64 / self.cost.h2d_bandwidth);
        self.clock.advance(d);
        Ok(d)
    }

    // ---------------------------------------------------------------- events

    /// Creates a CUDA event.
    pub fn event_create(&mut self) -> EventId {
        self.events.create()
    }

    /// Records `event` on `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidStream`] / [`GpuError::InvalidEvent`] for
    /// unknown ids.
    pub fn event_record(&mut self, event: EventId, stream: StreamId) -> GpuResult<()> {
        let free_at = self.streams.free_at(stream)?;
        if let Some(cap) = self.capture.as_ref() {
            let node = cap.stream_last.get(&stream).copied();
            self.events.get_mut(event)?.capture_node = node;
        } else {
            self.events.get_mut(event)?.completes_at = Some(free_at);
        }
        Ok(())
    }

    /// Makes `stream` wait for `event`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidStream`] / [`GpuError::InvalidEvent`] for
    /// unknown ids.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) -> GpuResult<()> {
        self.streams.free_at(stream)?; // validate stream id
        if let Some(cap) = self.capture.as_mut() {
            let node = self.events.get(event)?.capture_node;
            if let Some(n) = node {
                cap.pending_event_deps.entry(stream).or_default().push(n);
            }
        } else {
            let completes = self
                .events
                .get(event)?
                .completes_at
                .unwrap_or(SimTime::ZERO);
            let cur = self.streams.free_at(stream)?;
            self.streams.set_free_at(stream, cur.max(completes))?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------- capture

    /// Begins a stream capture on `stream` (paper §2.2, second way to build
    /// CUDA graphs).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::ConcurrentCapture`] if a capture is already
    /// active in this process.
    pub fn begin_capture(&mut self, stream: StreamId) -> GpuResult<()> {
        self.streams.free_at(stream)?;
        if self.capture.is_some() {
            return Err(GpuError::ConcurrentCapture);
        }
        self.capture = Some(CaptureState {
            origin_stream: stream,
            launches: Vec::new(),
            stream_last: HashMap::new(),
            pending_event_deps: HashMap::new(),
        });
        Ok(())
    }

    /// Ends the active capture, returning the recorded launches with their
    /// dependency edges.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NotCapturing`] without an active capture.
    pub fn end_capture(&mut self) -> GpuResult<Vec<CapturedLaunch>> {
        let cap = self.capture.take().ok_or(GpuError::NotCapturing)?;
        Ok(cap.launches)
    }

    /// Whether a capture is in progress.
    pub fn is_capturing(&self) -> bool {
        self.capture.is_some()
    }

    /// The stream the active capture originated on, if any.
    pub fn capture_origin_stream(&self) -> Option<StreamId> {
        self.capture.as_ref().map(|c| c.origin_stream)
    }

    // ---------------------------------------------------------------- launch

    /// `cudaLaunchKernel`: the single entry point for both eager execution
    /// and stream capture.
    ///
    /// In eager mode the kernel is executed immediately (pointer validation,
    /// digest propagation, pipelined CPU/GPU timing). In capture mode the
    /// launch is recorded with its dependencies and **not** executed.
    ///
    /// # Errors
    ///
    /// * [`GpuError::InvalidDeviceFunction`] for unmapped addresses.
    /// * [`GpuError::ParamMismatch`] when arity differs from the signature.
    /// * [`GpuError::SyncDuringCapture`] when the launch triggers a lazy
    ///   library init or module load during capture (warm-up missing).
    /// * [`GpuError::DanglingRead`] / [`GpuError::DanglingWrite`] when eager
    ///   execution touches a dead pointer.
    pub fn launch_kernel(
        &mut self,
        addr: u64,
        values: &[u64],
        work: Work,
        stream: StreamId,
    ) -> GpuResult<()> {
        self.streams.free_at(stream)?;
        let kref = *self
            .addr_to_kernel
            .get(&addr)
            .ok_or(GpuError::InvalidDeviceFunction { addr })?;
        let def = self.catalog.kernel(kref).clone();
        if values.len() != def.sig().len() {
            return Err(GpuError::ParamMismatch {
                kernel: def.name().to_string(),
                expected: def.sig().len(),
                got: values.len(),
            });
        }
        // Lazy library init: synchronizes, so it invalidates any capture.
        if self.catalog.lib(kref.lib as usize).needs_init()
            && !self.lib_initialized[kref.lib as usize]
        {
            if self.capture.is_some() {
                self.capture = None;
                return Err(GpuError::SyncDuringCapture {
                    origin: format!(
                        "lazy init of `{}`",
                        self.catalog.lib(kref.lib as usize).name()
                    ),
                });
            }
            self.clock
                .advance(SimDuration::from_nanos(self.cost.library_init_ns));
            self.lib_initialized[kref.lib as usize] = true;
        }
        self.ensure_module_loaded(kref)?;

        let params = ParamBuffer::encode(def.sig(), values);
        self.record(TraceEvent::Launch {
            kernel_addr: addr,
            params: params.clone(),
        });

        if let Some(cap) = self.capture.as_mut() {
            let idx = cap.launches.len();
            let mut deps = Vec::new();
            if let Some(&prev) = cap.stream_last.get(&stream) {
                deps.push(prev);
            }
            if let Some(evdeps) = cap.pending_event_deps.remove(&stream) {
                for d in evdeps {
                    if !deps.contains(&d) {
                        deps.push(d);
                    }
                }
            }
            cap.launches.push(CapturedLaunch {
                kernel_addr: addr,
                params,
                work,
                stream,
                deps,
            });
            cap.stream_last.insert(stream, idx);
            self.clock
                .advance(SimDuration::from_nanos(self.cost.capture_per_kernel_ns));
            return Ok(());
        }

        // Eager path: CPU launch overhead, then pipelined GPU execution.
        self.clock
            .advance(SimDuration::from_nanos(self.cost.eager_launch_cpu_ns));
        let exec = self.execute_kernel_raw(addr, &params, work)?;
        let start = self.clock.now().max(self.streams.free_at(stream)?);
        self.streams.set_free_at(stream, start + exec)?;
        Ok(())
    }

    /// Executes a kernel's *semantics* (pointer validation + digest
    /// propagation) and returns its GPU execution time, without advancing
    /// the clock or touching stream state. Graph replay uses this to run
    /// nodes under its own DAG scheduler.
    ///
    /// # Errors
    ///
    /// Same address/pointer errors as [`ProcessRuntime::launch_kernel`];
    /// additionally [`GpuError::InvalidDeviceFunction`] if the kernel's
    /// module is not loaded (a restored graph with a stale kernel address or
    /// an un-triggered module fails here, exactly like the real driver).
    pub fn execute_kernel_raw(
        &mut self,
        addr: u64,
        params: &ParamBuffer,
        work: Work,
    ) -> GpuResult<SimDuration> {
        let kref = *self
            .addr_to_kernel
            .get(&addr)
            .ok_or(GpuError::InvalidDeviceFunction { addr })?;
        if !self.module_loaded[kref.lib as usize][kref.module as usize] {
            return Err(GpuError::InvalidDeviceFunction { addr });
        }
        let def = self.catalog.kernel(kref).clone();
        if params.param_count() != def.sig().len() {
            return Err(GpuError::ParamMismatch {
                kernel: def.name().to_string(),
                expected: def.sig().len(),
                got: params.param_count(),
            });
        }

        // Fold inputs into a digest seed.
        let mut h = DigestState::new(def.name());
        for (i, kind) in def.sig().iter().enumerate() {
            let v = params.value(i);
            if kind == crate::kernel::ParamKind::PtrArrayIn {
                // Indirect pointers (§8): dereference every entry of the
                // pointer table and fold the targets' contents.
                let entries: Vec<u64> = self
                    .memory
                    .read_ptr_table(v)
                    .map_err(|_| GpuError::DanglingRead {
                        kernel: def.name().to_string(),
                        addr: v,
                    })?
                    .to_vec();
                for entry in entries {
                    let d = self
                        .memory
                        .read_digest(entry)
                        .map_err(|_| GpuError::DanglingRead {
                            kernel: def.name().to_string(),
                            addr: entry,
                        })?;
                    h.absorb_bytes(&d);
                }
            } else if kind.is_pointer() {
                if kind.is_read() {
                    let d = self
                        .memory
                        .read_digest(v)
                        .map_err(|_| GpuError::DanglingRead {
                            kernel: def.name().to_string(),
                            addr: v,
                        })?;
                    h.absorb_bytes(&d);
                }
            } else {
                h.absorb_u64(v);
            }
        }
        // Write outputs.
        for (i, kind) in def.sig().iter().enumerate() {
            if kind.is_pointer() && kind.is_write() {
                let v = params.value(i);
                let mut out = h.clone();
                out.absorb_u64(i as u64);
                self.memory
                    .write_digest(v, out.finish())
                    .map_err(|_| GpuError::DanglingWrite {
                        kernel: def.name().to_string(),
                        addr: v,
                    })?;
            }
        }
        Ok(work.exec_time(def.class(), &self.cost))
    }

    /// Enables/disables the paper-§8 compilation pass that makes
    /// device-side allocations visible to the interception trace. Without
    /// it, device-side allocations silently shift the allocation sequence —
    /// the failure mode §8 describes.
    pub fn set_intercept_device_allocs(&mut self, enabled: bool) {
        self.intercept_device_allocs = enabled;
    }

    /// Launches a kernel that performs a **device-side allocation** of
    /// `alloc_bytes` during its execution (paper §8), returning the
    /// allocated pointer. Eager-only: such kernels cannot be captured in
    /// this model.
    ///
    /// # Errors
    ///
    /// * [`GpuError::DeviceAllocDuringCapture`] inside a capture.
    /// * The same errors as [`ProcessRuntime::launch_kernel`].
    pub fn launch_allocating_kernel(
        &mut self,
        addr: u64,
        values: &[u64],
        work: Work,
        stream: StreamId,
        alloc_bytes: u64,
        tag: AllocTag,
    ) -> GpuResult<DevicePtr> {
        if self.capture.is_some() {
            return Err(GpuError::DeviceAllocDuringCapture);
        }
        self.launch_kernel(addr, values, work, stream)?;
        // The allocation happens on-device, outside cudaMalloc: the host
        // interceptor only sees it when the §8 compilation pass is active.
        let ptr = self.memory.alloc(alloc_bytes, tag)?;
        if self.intercept_device_allocs {
            let alloc = *self.memory.containing(ptr.addr()).expect("just allocated");
            self.record(TraceEvent::DeviceAlloc {
                seq: alloc.seq(),
                addr: ptr.addr(),
                size: alloc.size(),
            });
        }
        Ok(ptr)
    }

    /// `cudaDeviceSynchronize`: waits for all GPU work; invalidates any
    /// active capture (paper §2.3).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::SyncDuringCapture`] during capture.
    pub fn device_synchronize(&mut self) -> GpuResult<()> {
        if self.capture.is_some() {
            self.capture = None;
            return Err(GpuError::SyncDuringCapture {
                origin: "cudaDeviceSynchronize".into(),
            });
        }
        let drain = self.streams.all_free_at();
        self.clock.advance_to(drain);
        self.clock
            .advance(SimDuration::from_nanos(self.cost.sync_ns));
        Ok(())
    }

    /// Direct stream access for schedulers (graph replay).
    pub fn streams(&self) -> &StreamPool {
        &self.streams
    }

    /// Mutable stream access for schedulers (graph replay).
    pub fn streams_mut(&mut self) -> &mut StreamPool {
        &mut self.streams
    }
}

/// Tiny FNV-1a–based digest builder used for kernel semantics.
#[derive(Debug, Clone)]
pub struct DigestState {
    a: u64,
    b: u64,
}

impl DigestState {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a digest seeded with a label (kernel name, tensor id, ...).
    pub fn new(label: &str) -> Self {
        let mut s = DigestState {
            a: Self::FNV_OFFSET,
            b: Self::FNV_OFFSET ^ 0x5bd1_e995,
        };
        s.absorb_bytes(label.as_bytes());
        s
    }

    /// Absorbs raw bytes.
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(Self::FNV_PRIME);
            self.b = self.b.rotate_left(13) ^ self.a;
        }
    }

    /// Absorbs a 64-bit value.
    pub fn absorb_u64(&mut self, v: u64) {
        self.absorb_bytes(&v.to_le_bytes());
    }

    /// Produces the 16-byte digest.
    pub fn finish(&self) -> Digest {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.a.to_le_bytes());
        out[8..].copy_from_slice(&self.b.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{CostClass, KernelDef, KernelSig, ParamKind};
    use crate::library::{LibrarySpec, ModuleSpec};

    fn catalog() -> Arc<LibraryCatalog> {
        let sig2 = KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]);
        let sig3 = KernelSig::new(vec![
            ParamKind::PtrIn,
            ParamKind::Scalar4,
            ParamKind::PtrOut,
        ]);
        LibraryCatalog::new(vec![
            LibrarySpec::new(
                "libmodel.so",
                false,
                vec![ModuleSpec::new(
                    "elementwise",
                    vec![
                        KernelDef::new("vec_add", true, sig2.clone(), CostClass::MemoryBound),
                        KernelDef::new("rms_norm", true, sig3, CostClass::MemoryBound),
                    ],
                )],
            ),
            LibrarySpec::new(
                "libcublas_sim.so",
                true,
                vec![ModuleSpec::new(
                    "gemm",
                    vec![KernelDef::new(
                        "ampere_gemm",
                        false,
                        sig2,
                        CostClass::ComputeBound,
                    )],
                )],
            ),
        ])
    }

    fn rt(seed: u64) -> ProcessRuntime {
        ProcessRuntime::new(
            catalog(),
            GpuSpec::new("test", 1 << 30),
            CostModel::default(),
            seed,
        )
    }

    #[test]
    fn dlopen_assigns_per_seed_bases() {
        let mut p1 = rt(1);
        let mut p2 = rt(2);
        let h1 = p1.dlopen("libmodel.so").unwrap();
        let h2 = p2.dlopen("libmodel.so").unwrap();
        let s1 = p1.dlsym(h1, "vec_add").unwrap();
        let s2 = p2.dlsym(h2, "vec_add").unwrap();
        let a1 = p1.cuda_get_func_by_symbol(s1).unwrap();
        let a2 = p2.cuda_get_func_by_symbol(s2).unwrap();
        assert_ne!(a1, a2, "kernel addresses must differ across launches");
        assert_eq!(p1.cu_func_get_name(a1).unwrap(), "vec_add");
    }

    #[test]
    fn dlsym_hides_unexported_kernels() {
        let mut p = rt(3);
        let h = p.dlopen("libcublas_sim.so").unwrap();
        assert!(matches!(
            p.dlsym(h, "ampere_gemm"),
            Err(GpuError::SymbolHidden { .. })
        ));
        assert!(matches!(
            p.dlsym(h, "nope"),
            Err(GpuError::SymbolNotFound { .. })
        ));
    }

    #[test]
    fn dlsym_requires_open_library() {
        let mut p = rt(3);
        // Construct a handle without opening: simulate misuse via index 0.
        let h = LibHandle(0);
        assert!(matches!(
            p.dlsym(h, "vec_add"),
            Err(GpuError::LibraryNotLoaded { .. })
        ));
    }

    #[test]
    fn module_enumeration_requires_triggered_load() {
        let mut p = rt(4);
        p.dlopen("libcublas_sim.so").unwrap();
        let h = ModuleHandle { lib: 1, module: 0 };
        assert!(matches!(
            p.cu_module_enumerate_functions(h),
            Err(GpuError::ModuleNotLoaded { .. })
        ));
        // Launch a kernel from the module (triggering-kernel): module loads.
        let addr = p
            .kernel_address(KernelRef {
                lib: 1,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        let addrs = p.cu_module_enumerate_functions(h).unwrap();
        assert_eq!(addrs, vec![addr]);
        assert_eq!(p.cu_func_get_name(addrs[0]).unwrap(), "ampere_gemm");
        assert_eq!(p.loaded_modules(), vec![h]);
    }

    #[test]
    fn eager_launch_updates_digests_and_time() {
        let mut p = rt(5);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(1024, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(1024, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [42; 16]).unwrap();
        let t0 = p.now();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::new(0.0, 1e6), 0)
            .unwrap();
        assert!(p.now() > t0, "CPU launch overhead must advance the clock");
        assert!(p.gpu_idle_at() > p.now(), "GPU work is asynchronous");
        let out = p.memory().read_digest(b.addr()).unwrap();
        assert_ne!(out, [0u8; 16]);
        // Deterministic: same inputs → same output digest.
        let mut q = rt(5);
        q.dlopen("libmodel.so").unwrap();
        let qaddr = q
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let qa = q.cuda_malloc(1024, AllocTag::Activation).unwrap();
        let qb = q.cuda_malloc(1024, AllocTag::Activation).unwrap();
        q.memory_mut().write_digest(qa.addr(), [42; 16]).unwrap();
        q.launch_kernel(qaddr, &[qa.addr(), qb.addr()], Work::new(0.0, 1e6), 0)
            .unwrap();
        assert_eq!(q.memory().read_digest(qb.addr()).unwrap(), out);
    }

    #[test]
    fn launch_validates_address_arity_and_pointers() {
        let mut p = rt(6);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        assert!(matches!(
            p.launch_kernel(0xdead, &[], Work::NONE, 0),
            Err(GpuError::InvalidDeviceFunction { .. })
        ));
        assert!(matches!(
            p.launch_kernel(addr, &[1], Work::NONE, 0),
            Err(GpuError::ParamMismatch { .. })
        ));
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        // Output pointer dangling.
        assert!(matches!(
            p.launch_kernel(addr, &[a.addr(), 0x0007_2fff_0000_0000], Work::NONE, 0),
            Err(GpuError::DanglingWrite { .. })
        ));
        // Input pointer dangling.
        assert!(matches!(
            p.launch_kernel(addr, &[0x0007_2fff_0000_0000, a.addr()], Work::NONE, 0),
            Err(GpuError::DanglingRead { .. })
        ));
    }

    #[test]
    fn lazy_library_init_syncs_and_breaks_capture() {
        let mut p = rt(7);
        p.dlopen("libcublas_sim.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 1,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        p.begin_capture(0).unwrap();
        let err = p
            .launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap_err();
        assert!(matches!(err, GpuError::SyncDuringCapture { .. }));
        assert!(!p.is_capturing(), "failed capture is aborted");
        // Warm-up outside capture succeeds and initializes the library...
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        // ...after which capture works.
        p.begin_capture(0).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        let launches = p.end_capture().unwrap();
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].kernel_addr, addr);
    }

    #[test]
    fn capture_records_dependencies_per_stream_and_events() {
        let mut p = rt(8);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        // Warm up (loads module) outside capture.
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();

        p.begin_capture(0).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap(); // n0 s0
        let ev = p.event_create();
        p.event_record(ev, 0).unwrap();
        p.stream_wait_event(1, ev).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 1)
            .unwrap(); // n1 s1 dep n0
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap(); // n2 s0 dep n0
        let l = p.end_capture().unwrap();
        assert_eq!(l.len(), 3);
        assert!(l[0].deps.is_empty());
        assert_eq!(l[1].deps, vec![0]);
        assert_eq!(l[2].deps, vec![0]);
        assert_eq!(l[1].stream, 1);
    }

    #[test]
    fn concurrent_capture_rejected() {
        let mut p = rt(9);
        p.begin_capture(0).unwrap();
        assert!(matches!(
            p.begin_capture(1),
            Err(GpuError::ConcurrentCapture)
        ));
        assert!(p.end_capture().is_ok());
        assert!(matches!(p.end_capture(), Err(GpuError::NotCapturing)));
    }

    #[test]
    fn sync_and_memcpy_rejected_during_capture() {
        let mut p = rt(10);
        let a = p.cuda_malloc(256, AllocTag::Weights).unwrap();
        p.begin_capture(0).unwrap();
        assert!(matches!(
            p.memcpy_h2d(a, 1024, [0; 16]),
            Err(GpuError::MemcpyDuringCapture)
        ));
        assert!(matches!(
            p.device_synchronize(),
            Err(GpuError::SyncDuringCapture { .. })
        ));
        assert!(!p.is_capturing());
    }

    #[test]
    fn trace_interleaves_allocs_frees_launches() {
        let mut p = rt(11);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        p.enable_tracing();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(512, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        p.cuda_free(a).unwrap();
        let tr = p.take_trace();
        assert!(!p.is_tracing());
        assert_eq!(tr.len(), 4);
        assert!(matches!(tr[0], TraceEvent::Alloc { seq: 0, .. }));
        assert!(matches!(tr[1], TraceEvent::Alloc { seq: 1, .. }));
        assert!(matches!(tr[2], TraceEvent::Launch { .. }));
        assert!(matches!(tr[3], TraceEvent::Free { .. }));
    }

    #[test]
    fn memcpy_h2d_sets_content_and_costs_bandwidth_time() {
        let mut p = rt(12);
        let a = p.cuda_malloc(1 << 20, AllocTag::Weights).unwrap();
        let t0 = p.now();
        let d = p.memcpy_h2d(a, 1 << 20, [9; 16]).unwrap();
        assert_eq!(p.now().since(t0), d);
        assert_eq!(p.memory().read_digest(a.addr()).unwrap(), [9; 16]);
    }

    #[test]
    fn device_synchronize_waits_for_gpu() {
        let mut p = rt(13);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::new(0.0, 1.3e9), 0)
            .unwrap();
        let before = p.now();
        p.device_synchronize().unwrap();
        assert!(p.now() > before);
        assert!(p.now() >= p.gpu_idle_at());
    }

    #[test]
    fn eager_events_order_cross_stream_work() {
        let mut p = rt(20);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        // One second of work on stream 0.
        let w = Work::new(0.0, p.cost().mem_bandwidth);
        p.launch_kernel(addr, &[a.addr(), b.addr()], w, 0).unwrap();
        let ev = p.event_create();
        p.event_record(ev, 0).unwrap();
        p.stream_wait_event(1, ev).unwrap();
        // Stream 1 cannot start before stream 0's work drains.
        let s0 = p.streams().free_at(0).unwrap();
        assert!(p.streams().free_at(1).unwrap() >= s0);
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 1)
            .unwrap();
        assert!(p.streams().free_at(1).unwrap() > s0);
    }

    #[test]
    fn dlopen_is_idempotent_with_stable_addresses() {
        let mut p = rt(21);
        p.dlopen("libmodel.so").unwrap();
        let a1 = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        p.dlopen("libmodel.so").unwrap();
        let a2 = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        assert_eq!(a1, a2, "re-opening must not remap");
        assert!(matches!(
            p.dlopen("nope.so"),
            Err(GpuError::LibraryNotFound { .. })
        ));
    }

    #[test]
    fn launch_on_invalid_stream_is_rejected() {
        let mut p = rt(22);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        assert!(matches!(
            p.launch_kernel(addr, &[1, 2], Work::NONE, 99),
            Err(GpuError::InvalidStream { stream: 99 })
        ));
    }

    #[test]
    fn memcpy_to_dangling_pointer_is_rejected() {
        let mut p = rt(23);
        let a = p.cuda_malloc(256, AllocTag::Weights).unwrap();
        p.cuda_free(a).unwrap();
        assert!(matches!(
            p.memcpy_h2d(a, 16, [0; 16]),
            Err(GpuError::InvalidPointer { .. })
        ));
    }

    #[test]
    fn oom_propagates_through_cuda_malloc() {
        let mut p = ProcessRuntime::new(
            catalog(),
            GpuSpec::new("tiny", 1024),
            CostModel::default(),
            24,
        );
        p.cuda_malloc(512, AllocTag::Weights).unwrap();
        assert!(matches!(
            p.cuda_malloc(1024, AllocTag::Weights),
            Err(GpuError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn take_trace_drains_and_disables() {
        let mut p = rt(25);
        p.enable_tracing();
        p.cuda_malloc(256, AllocTag::Other).unwrap();
        assert_eq!(p.trace_len(), 1);
        assert_eq!(p.take_trace().len(), 1);
        assert_eq!(p.trace_len(), 0);
        // Tracing is off now: new events are not recorded.
        p.cuda_malloc(256, AllocTag::Other).unwrap();
        assert_eq!(p.take_trace().len(), 0);
    }

    #[test]
    fn func_name_of_unknown_address_errors() {
        let p = rt(26);
        assert!(matches!(
            p.cu_func_get_name(0xdead_beef),
            Err(GpuError::InvalidDeviceFunction { .. })
        ));
        assert!(p.resolve_addr(0xdead_beef).is_none());
    }

    #[test]
    fn device_alloc_interception_toggle_controls_trace() {
        let mut p = rt(27);
        p.dlopen("libmodel.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        p.enable_tracing();
        let _ = p
            .launch_allocating_kernel(
                addr,
                &[a.addr(), a.addr()],
                Work::NONE,
                0,
                64,
                AllocTag::Workspace,
            )
            .unwrap();
        assert!(p
            .take_trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::DeviceAlloc { .. })));
        p.enable_tracing();
        p.set_intercept_device_allocs(false);
        let _ = p
            .launch_allocating_kernel(
                addr,
                &[a.addr(), a.addr()],
                Work::NONE,
                0,
                64,
                AllocTag::Workspace,
            )
            .unwrap();
        assert!(!p
            .take_trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::DeviceAlloc { .. })));
    }

    #[test]
    fn digest_state_is_deterministic_and_label_sensitive() {
        let mut a = DigestState::new("k");
        a.absorb_u64(1);
        let mut b = DigestState::new("k");
        b.absorb_u64(1);
        assert_eq!(a.finish(), b.finish());
        let mut c = DigestState::new("other");
        c.absorb_u64(1);
        assert_ne!(a.finish(), c.finish());
    }
}
