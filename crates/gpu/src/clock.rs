//! Virtual time and the calibrated cost model.
//!
//! Every operation in the simulated stack advances a [`VirtualClock`] instead
//! of consuming wall-clock time. Cost constants live in [`CostModel`] and are
//! calibrated so that the vanilla vLLM loading-phase breakdown of Qwen1.5 4B
//! reproduces Figure 8(a) of the paper (0.85 s structure init, 0.39 s weights,
//! 0.21 s tokenizer, 0.50 s KV-cache init, 0.90 s capturing; 2.85 s total).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanoseconds since process start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero instant (process start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since process start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since process start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from floating-point seconds (saturating at zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Monotonic virtual clock owned by a simulated process.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Moves the clock forward to `t` if `t` is in the future; never rewinds.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Calibrated cost constants for the simulated software/hardware stack.
///
/// All constants are nanoseconds unless stated otherwise. Defaults are
/// calibrated against the paper's measured numbers (see module docs); they can
/// be overridden to explore other hardware points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU-side overhead of launching one kernel from the eager (PyTorch)
    /// path. Dominated by Python/framework overhead; this is the overhead
    /// CUDA graphs eliminate (paper §2.2, Figure 3).
    pub eager_launch_cpu_ns: u64,
    /// CPU-side overhead of launching one whole CUDA graph.
    pub graph_launch_cpu_ns: u64,
    /// Extra CPU cost per kernel while a stream capture is recording.
    pub capture_per_kernel_ns: u64,
    /// Fixed GPU-side cost per kernel (scheduling, tail effects).
    pub kernel_fixed_gpu_ns: u64,
    /// `cudaMalloc` / caching-allocator cost per call.
    pub malloc_ns: u64,
    /// `cudaFree` / caching-allocator cost per call.
    pub free_ns: u64,
    /// `dlopen` of a shared library.
    pub dlopen_ns: u64,
    /// `dlsym` lookup.
    pub dlsym_ns: u64,
    /// Driver-side load of one CUDA module (cubin).
    pub module_load_ns: u64,
    /// Per-kernel cost of `cuModuleEnumerateFunctions` + `cuFuncGetName`.
    pub module_enumerate_per_kernel_ns: u64,
    /// `cudaGetFuncBySymbol` lookup (excluding any implied module load).
    pub get_func_by_symbol_ns: u64,
    /// One-time lazy initialization of a library that requires it (e.g.
    /// cuBLAS); includes an implicit device synchronization, which is what
    /// makes warm-up mandatory before capture (paper §2.3).
    pub library_init_ns: u64,
    /// `cudaDeviceSynchronize` fixed cost.
    pub sync_ns: u64,
    /// `cudaGraphInstantiate` cost per graph node. Calibrated so Medusa's
    /// restore-time capture stage lands at ~0.57 s for Qwen1.5 4B (Fig. 8c).
    pub graph_instantiate_per_node_ns: u64,
    /// Cost of patching one restored node (pointer fill / kernel address fill)
    /// via `cudaGraphExecKernelNodeSetParams`-style APIs.
    pub node_patch_ns: u64,
    /// Artifact deserialization cost per node (reading the materialized graph
    /// from storage).
    pub artifact_load_per_node_ns: u64,
    /// Fixed cost of opening a materialization artifact online (metadata +
    /// replay-op read; part of Medusa's 0.02 s KV-init stage in Fig. 8c).
    pub artifact_open_ns: u64,
    /// Offline analysis stage cost per graph node (trace correlation +
    /// indirect index construction; calibrated so the offline phase averages
    /// ~39 s as in paper Fig. 9).
    pub analysis_per_node_ns: u64,
    /// Offline cost of dumping one materialized node to storage (part of the
    /// capturing stage's ~9.7 s in Fig. 9).
    pub materialize_dump_per_node_ns: u64,
    /// Effective GPU compute throughput for dense GEMMs, in FLOP/s.
    pub effective_flops: f64,
    /// Effective GPU memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Effective host-to-device copy bandwidth, bytes/s (pinned, NVLink/PCIe).
    pub h2d_bandwidth: f64,
    /// Aggregate storage read bandwidth, bytes/s (4 × Optane P5800X).
    pub storage_bandwidth: f64,
    /// Fixed latency of a storage read burst.
    pub storage_seek_ns: u64,
    /// Per-tensor CPU cost of model structure initialization (framework
    /// object creation; calibrated to Fig. 8a's 0.85 s for Qwen1.5 4B).
    pub structure_per_tensor_ns: u64,
    /// Fixed per-model structure initialization overhead (imports, config).
    pub structure_fixed_ns: u64,
    /// Per-vocab-entry tokenizer load cost (calibrated to 0.21 s for
    /// Qwen1.5 4B's 151936-entry vocabulary).
    pub tokenizer_per_entry_ns: u64,
    /// Fixed tokenizer load overhead.
    pub tokenizer_fixed_ns: u64,
    /// Runtime-initialization phase (container + Python imports) duration.
    /// Eliminated by warm-container pools in the trace experiments.
    pub runtime_init_ns: u64,
    /// Throughput penalty multiplier applied to host-to-device weight copies
    /// while a profiling forwarding occupies the GPU (paper §7.3 observes
    /// +0.08 s interference on Qwen1.5 4B).
    pub h2d_interference_factor: f64,
    /// Number of parallel GPU execution lanes used when replaying a graph
    /// DAG (models inter-branch concurrency inside one graph launch).
    pub graph_exec_lanes: u32,
}

impl CostModel {
    /// Cost model calibrated to the paper's A100-40GB + 4×P5800X testbed.
    pub fn a100_calibrated() -> Self {
        CostModel {
            eager_launch_cpu_ns: 45_000,
            graph_launch_cpu_ns: 25_000,
            capture_per_kernel_ns: 6_000,
            kernel_fixed_gpu_ns: 5_000,
            malloc_ns: 1_500,
            free_ns: 800,
            dlopen_ns: 3_000_000,
            dlsym_ns: 4_000,
            module_load_ns: 1_200_000,
            module_enumerate_per_kernel_ns: 600,
            get_func_by_symbol_ns: 9_000,
            library_init_ns: 45_000_000,
            sync_ns: 12_000,
            graph_instantiate_per_node_ns: 12_000,
            node_patch_ns: 7_000,
            artifact_load_per_node_ns: 10_000,
            artifact_open_ns: 15_000_000,
            analysis_per_node_ns: 1_900_000,
            materialize_dump_per_node_ns: 380_000,
            effective_flops: 140.0e12,
            mem_bandwidth: 1.4e12,
            h2d_bandwidth: 24.0e9,
            storage_bandwidth: 20.0e9,
            storage_seek_ns: 120_000,
            structure_per_tensor_ns: 1_950_000,
            structure_fixed_ns: 60_000_000,
            tokenizer_per_entry_ns: 1_000,
            tokenizer_fixed_ns: 55_000_000,
            runtime_init_ns: 830_000_000,
            h2d_interference_factor: 0.82,
            graph_exec_lanes: 2,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::a100_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_micros(5));
        assert_eq!(c.now().as_nanos(), 5_000);
        c.advance_to(SimTime::from_nanos(2_000));
        assert_eq!(c.now().as_nanos(), 5_000, "advance_to never rewinds");
        c.advance_to(SimTime::from_nanos(9_000));
        assert_eq!(c.now().as_nanos(), 9_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_nanos(), 2_500_000);
        assert_eq!((a - b).as_nanos(), 1_500_000);
        assert_eq!((b - a).as_nanos(), 0, "sub saturates");
        assert_eq!((b * 4).as_nanos(), 2_000_000);
        assert_eq!((a / 2).as_nanos(), 1_000_000);
        let total: SimDuration = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 3_000_000);
    }

    #[test]
    fn time_since_saturates() {
        let t1 = SimTime::from_nanos(100);
        let t2 = SimTime::from_nanos(40);
        assert_eq!(t1.since(t2).as_nanos(), 60);
        assert_eq!(t2.since(t1).as_nanos(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(120).to_string(), "120ns");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_nanos(1_000_000).to_string(), "0.001000s");
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn default_cost_model_is_calibrated() {
        let cm = CostModel::default();
        assert_eq!(cm, CostModel::a100_calibrated());
        assert!(cm.effective_flops > 1e12);
        assert!(cm.h2d_interference_factor > 0.0 && cm.h2d_interference_factor <= 1.0);
    }
}
