//! # medusa-gpu
//!
//! Simulated GPU / CUDA driver substrate for the [Medusa (ASPLOS'25)]
//! reproduction.
//!
//! The real Medusa is built on the CUDA driver; this crate provides the
//! closest synthetic equivalent that exercises the same code paths the paper
//! depends on:
//!
//! * **Non-deterministic addresses across launches** — per-process ASLR for
//!   both shared-library code and device memory, plus seeded allocator reuse
//!   jitter (paper challenge I, §4).
//! * **Hidden kernels behind lazy module loading** — closed-source
//!   (cuBLAS-like) kernels are absent from `dlsym` symbol tables and only
//!   resolvable by enumerating a driver-loaded module, which is what makes
//!   triggering-kernels necessary (paper challenge II, §5).
//! * **Capture-time restrictions** — synchronizing calls (lazy library
//!   initialization, module loads, `cudaDeviceSynchronize`) invalidate an
//!   active stream capture, which is why warm-up forwarding exists (§2.3).
//! * **Executable semantics** — kernels fold digests of their input buffers
//!   into their output buffers, so a wrongly restored pointer or kernel
//!   address is *observable*, enabling the paper's validation forwarding.
//! * **Virtual time** — every API charges a calibrated cost
//!   ([`CostModel`]), reproducing the paper's latency landscape without
//!   hardware.
//!
//! ## Example
//!
//! ```rust
//! use medusa_gpu::{
//!     AllocTag, CostClass, CostModel, GpuSpec, KernelDef, KernelSig, LibraryCatalog,
//!     LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
//! };
//!
//! # fn main() -> Result<(), medusa_gpu::GpuError> {
//! let catalog = LibraryCatalog::new(vec![LibrarySpec::new(
//!     "libmodel.so",
//!     false,
//!     vec![ModuleSpec::new(
//!         "elementwise",
//!         vec![KernelDef::new(
//!             "vec_add",
//!             true,
//!             KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
//!             CostClass::MemoryBound,
//!         )],
//!     )],
//! )]);
//! let mut rt = ProcessRuntime::new(catalog, GpuSpec::a100_40gb(), CostModel::default(), 42);
//! let lib = rt.dlopen("libmodel.so")?;
//! let sym = rt.dlsym(lib, "vec_add")?;
//! let addr = rt.cuda_get_func_by_symbol(sym)?;
//! let a = rt.cuda_malloc(1024, AllocTag::Activation)?;
//! let b = rt.cuda_malloc(1024, AllocTag::Activation)?;
//! rt.memory_mut().write_digest(a.addr(), [1; 16])?;
//! rt.launch_kernel(addr, &[a.addr(), b.addr()], Work::new(0.0, 2048.0), 0)?;
//! rt.device_synchronize()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod kernel;
mod library;
mod memory;
mod process;
mod storage;
mod stream;

pub use clock::{CostModel, SimDuration, SimTime, VirtualClock};
pub use error::{GpuError, GpuResult};
pub use kernel::{CostClass, KernelDef, KernelRef, KernelSig, ParamBuffer, ParamKind, Work};
pub use library::{LibraryCatalog, LibrarySpec, ModuleSpec};
pub use memory::{
    AllocTag, Allocation, DeviceMemory, DevicePtr, Digest, MemoryStats, ALLOC_ALIGN,
    DEVICE_REGION_BASE,
};
pub use process::{
    CapturedLaunch, DigestState, GpuSpec, HostSymbol, LibHandle, ModuleHandle, ProcessRuntime,
    TraceEvent,
};
pub use storage::SimStorage;
pub use stream::{EventId, EventTable, StreamId, StreamPool};
