//! Kernel definitions, signatures, launch parameters and timing.
//!
//! A kernel's *signature* describes its parameter layout exactly the way a
//! CUDA graph node exposes it (paper Figure 4): the number of parameters and
//! the byte size of each. Whether an 8-byte parameter is a data pointer or a
//! plain constant is **not** visible in the raw buffer — Medusa must infer it
//! (paper §4) — but the simulator needs the ground truth to execute kernels,
//! so [`ParamKind`] keeps it. Analysis code must only look at widths.

use crate::clock::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth parameter role. Analysis code must only rely on
/// [`ParamKind::width`]; the pointer/scalar distinction is what Medusa's
/// offline phase has to reconstruct heuristically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// 4-byte constant (lengths, strides, ...).
    Scalar4,
    /// 8-byte constant. A potential false-positive source for the pointer
    /// heuristic when its value happens to look like a device address.
    Scalar8,
    /// 8-byte device pointer the kernel reads from.
    PtrIn,
    /// 8-byte device pointer the kernel writes to.
    PtrOut,
    /// 8-byte device pointer the kernel reads and writes.
    PtrInOut,
    /// 8-byte device pointer to an **array of device pointers** the kernel
    /// dereferences (indirect pointers, paper §8). Absent from the ten
    /// evaluated models but supported as the paper's proposed extension.
    PtrArrayIn,
}

impl ParamKind {
    /// Byte width of the parameter as stored in the node's raw buffer.
    pub const fn width(self) -> u32 {
        match self {
            ParamKind::Scalar4 => 4,
            _ => 8,
        }
    }

    /// Whether this parameter is a device pointer (ground truth).
    pub const fn is_pointer(self) -> bool {
        matches!(
            self,
            ParamKind::PtrIn | ParamKind::PtrOut | ParamKind::PtrInOut | ParamKind::PtrArrayIn
        )
    }

    /// Whether the kernel reads through this parameter.
    pub const fn is_read(self) -> bool {
        matches!(
            self,
            ParamKind::PtrIn | ParamKind::PtrInOut | ParamKind::PtrArrayIn
        )
    }

    /// Whether the kernel writes through this parameter.
    pub const fn is_write(self) -> bool {
        matches!(self, ParamKind::PtrOut | ParamKind::PtrInOut)
    }
}

/// A kernel's parameter signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelSig(Vec<ParamKind>);

impl KernelSig {
    /// Creates a signature from parameter kinds in declaration order.
    pub fn new(params: Vec<ParamKind>) -> Self {
        KernelSig(params)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the kernel takes no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The kind of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn kind(&self, i: usize) -> ParamKind {
        self.0[i]
    }

    /// Iterates over parameter kinds.
    pub fn iter(&self) -> impl Iterator<Item = ParamKind> + '_ {
        self.0.iter().copied()
    }

    /// Total raw buffer size in bytes.
    pub fn raw_len(&self) -> usize {
        self.0.iter().map(|p| p.width() as usize).sum()
    }
}

/// An encoded parameter buffer: the raw bytes plus per-parameter layout, as a
/// CUDA graph node would expose them (paper Fig. 4: "pointer to the array of
/// all parameters, the number of parameters, and the size of each of them").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamBuffer {
    bytes: Vec<u8>,
    layout: Vec<(u32, u32)>, // (offset, size) per parameter
}

impl ParamBuffer {
    /// Encodes launch values against a signature. Scalar4 values are
    /// truncated to their low 4 bytes, everything else is stored as 8-byte
    /// little-endian, matching a packed kernel argument buffer.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != sig.len()` — launches are constructed by
    /// the schedule, so a mismatch is a programming error.
    pub fn encode(sig: &KernelSig, values: &[u64]) -> Self {
        assert_eq!(values.len(), sig.len(), "parameter count mismatch");
        let mut bytes = Vec::with_capacity(sig.raw_len());
        let mut layout = Vec::with_capacity(values.len());
        for (kind, &v) in sig.iter().zip(values) {
            let off = bytes.len() as u32;
            let w = kind.width();
            bytes.extend_from_slice(&v.to_le_bytes()[..w as usize]);
            layout.push((off, w));
        }
        ParamBuffer { bytes, layout }
    }

    /// Reconstructs a buffer from `(value, size)` parts — used when
    /// rebuilding graph nodes from a materialization artifact, where the
    /// signature is not available but per-parameter sizes are.
    ///
    /// # Panics
    ///
    /// Panics if a size is not 4 or 8.
    pub fn from_parts(parts: &[(u64, u32)]) -> Self {
        let mut bytes = Vec::new();
        let mut layout = Vec::with_capacity(parts.len());
        for &(v, size) in parts {
            assert!(size == 4 || size == 8, "parameter sizes are 4 or 8 bytes");
            let off = bytes.len() as u32;
            bytes.extend_from_slice(&v.to_le_bytes()[..size as usize]);
            layout.push((off, size));
        }
        ParamBuffer { bytes, layout }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.layout.len()
    }

    /// Byte size of parameter `i`.
    pub fn size_of(&self, i: usize) -> u32 {
        self.layout[i].1
    }

    /// Parameter `i` decoded as an unsigned little-endian integer
    /// (zero-extended for 4-byte parameters).
    pub fn value(&self, i: usize) -> u64 {
        let (off, size) = self.layout[i];
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.bytes[off as usize..(off + size) as usize]);
        u64::from_le_bytes(buf)
    }

    /// Overwrites parameter `i` with a new value (used when restoring
    /// materialized pointers into graph nodes).
    pub fn set_value(&mut self, i: usize, v: u64) {
        let (off, size) = self.layout[i];
        self.bytes[off as usize..(off + size) as usize]
            .copy_from_slice(&v.to_le_bytes()[..size as usize]);
    }

    /// The raw parameter bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Which resource dominates a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostClass {
    /// Bandwidth-bound (element-wise ops, layer norms, copies).
    MemoryBound,
    /// FLOP-bound (GEMMs, attention score computation).
    ComputeBound,
    /// Negligible work (bookkeeping, sampling glue).
    Auxiliary,
}

/// The work performed by one kernel launch; determines simulated GPU time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved through device memory.
    pub bytes: f64,
}

impl Work {
    /// No work (auxiliary kernels).
    pub const NONE: Work = Work {
        flops: 0.0,
        bytes: 0.0,
    };

    /// Construct from FLOPs and bytes.
    pub fn new(flops: f64, bytes: f64) -> Self {
        Work { flops, bytes }
    }

    /// GPU execution time under `cost`, including the fixed per-kernel cost.
    pub fn exec_time(&self, class: CostClass, cost: &CostModel) -> SimDuration {
        let fixed = SimDuration::from_nanos(cost.kernel_fixed_gpu_ns);
        if class == CostClass::Auxiliary {
            return fixed;
        }
        let compute_s = self.flops / cost.effective_flops;
        let memory_s = self.bytes / cost.mem_bandwidth;
        fixed + SimDuration::from_secs_f64(compute_s.max(memory_s))
    }
}

/// Static definition of one kernel inside a module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDef {
    name: String,
    exported: bool,
    sig: KernelSig,
    class: CostClass,
}

impl KernelDef {
    /// Creates a kernel definition.
    ///
    /// `exported` controls whether the kernel appears in the library's
    /// dynamic symbol table; closed-source cuBLAS-like kernels set it to
    /// `false` (paper §5).
    pub fn new(name: impl Into<String>, exported: bool, sig: KernelSig, class: CostClass) -> Self {
        KernelDef {
            name: name.into(),
            exported,
            sig,
            class,
        }
    }

    /// The kernel's mangled name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the kernel is visible to `dlsym`.
    pub fn exported(&self) -> bool {
        self.exported
    }

    /// Parameter signature.
    pub fn sig(&self) -> &KernelSig {
        &self.sig
    }

    /// Cost class.
    pub fn class(&self) -> CostClass {
        self.class
    }
}

/// Location of a kernel in the library catalog: (library, module, kernel)
/// indices. Stable across processes — only *addresses* change per launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelRef {
    /// Library index in the catalog.
    pub lib: u16,
    /// Module index within the library.
    pub module: u16,
    /// Kernel index within the module.
    pub kernel: u16,
}

impl fmt::Display for KernelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}.{}.{}", self.lib, self.module, self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> KernelSig {
        KernelSig::new(vec![
            ParamKind::PtrIn,
            ParamKind::Scalar4,
            ParamKind::PtrOut,
            ParamKind::Scalar8,
        ])
    }

    #[test]
    fn sig_widths_and_raw_len() {
        let s = sig();
        assert_eq!(s.len(), 4);
        assert_eq!(s.raw_len(), 8 + 4 + 8 + 8);
        assert_eq!(s.kind(1).width(), 4);
        assert!(s.kind(0).is_pointer() && s.kind(0).is_read());
        assert!(s.kind(2).is_write() && !s.kind(2).is_read());
        assert!(!s.kind(3).is_pointer());
    }

    #[test]
    fn param_buffer_roundtrip() {
        let s = sig();
        let vals = [
            0x0007_2000_0000_1000,
            0xdead_beef_1234_5678,
            0x0007_2000_0000_2000,
            42,
        ];
        let pb = ParamBuffer::encode(&s, &vals);
        assert_eq!(pb.param_count(), 4);
        assert_eq!(pb.value(0), vals[0]);
        // Scalar4 truncates to 32 bits.
        assert_eq!(pb.value(1), 0x1234_5678);
        assert_eq!(pb.value(2), vals[2]);
        assert_eq!(pb.value(3), 42);
        assert_eq!(pb.size_of(1), 4);
        assert_eq!(pb.as_bytes().len(), s.raw_len());
    }

    #[test]
    fn param_buffer_set_value_patches_in_place() {
        let s = sig();
        let mut pb = ParamBuffer::encode(&s, &[1, 2, 3, 4]);
        pb.set_value(2, 0x0007_2000_0000_9999);
        assert_eq!(pb.value(2), 0x0007_2000_0000_9999);
        assert_eq!(pb.value(0), 1);
        assert_eq!(pb.value(3), 4);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn encode_validates_count() {
        ParamBuffer::encode(&sig(), &[1, 2]);
    }

    #[test]
    fn exec_time_picks_dominant_resource() {
        let cm = CostModel::default();
        let fixed = SimDuration::from_nanos(cm.kernel_fixed_gpu_ns);
        // Pure compute.
        let w = Work::new(cm.effective_flops, 0.0); // exactly one second of FLOPs
        let t = w.exec_time(CostClass::ComputeBound, &cm);
        assert_eq!(t, fixed + SimDuration::from_secs_f64(1.0));
        // Memory dominates when bytes/bw exceeds flops time.
        let w2 = Work::new(1.0, cm.mem_bandwidth * 0.5);
        let t2 = w2.exec_time(CostClass::MemoryBound, &cm);
        assert_eq!(t2, fixed + SimDuration::from_secs_f64(0.5));
        // Auxiliary ignores work entirely.
        let t3 = Work::new(1e18, 1e18).exec_time(CostClass::Auxiliary, &cm);
        assert_eq!(t3, fixed);
    }

    #[test]
    fn kernel_def_accessors() {
        let k = KernelDef::new("ampere_sgemm_128x64", false, sig(), CostClass::ComputeBound);
        assert_eq!(k.name(), "ampere_sgemm_128x64");
        assert!(!k.exported());
        assert_eq!(k.class(), CostClass::ComputeBound);
        assert_eq!(k.sig().len(), 4);
    }

    #[test]
    fn kernel_ref_display() {
        let r = KernelRef {
            lib: 1,
            module: 2,
            kernel: 3,
        };
        assert_eq!(r.to_string(), "k1.2.3");
    }
}
