//! Shared-library and CUDA-module catalog.
//!
//! The *catalog* is the static software environment: which libraries exist,
//! which modules (cubins) they contain, and which kernels live in each
//! module. It is shared between the offline and online phases — what changes
//! per process launch is only the ASLR base of each library and therefore
//! every kernel's address ([`crate::process::ProcessRuntime`]).
//!
//! Modules matter because the CUDA driver loads kernels **at module
//! granularity** (paper §5): loading any kernel of a module makes *all* of
//! that module's kernels enumerable, which is what triggering-kernels
//! exploit.

use crate::error::{GpuError, GpuResult};
use crate::kernel::{KernelDef, KernelRef};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A CUDA module (cubin): a set of kernels loaded together by the driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    name: String,
    kernels: Vec<KernelDef>,
}

impl ModuleSpec {
    /// Creates a module with the given kernels.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelDef>) -> Self {
        ModuleSpec {
            name: name.into(),
            kernels,
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kernels in the module, in definition order.
    pub fn kernels(&self) -> &[KernelDef] {
        &self.kernels
    }
}

/// A shared library containing CUDA modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibrarySpec {
    name: String,
    needs_init: bool,
    modules: Vec<ModuleSpec>,
}

impl LibrarySpec {
    /// Creates a library.
    ///
    /// `needs_init` marks libraries (like cuBLAS) whose first kernel launch
    /// triggers a lazy initialization containing a device synchronization —
    /// the reason warm-up forwarding is mandatory before capture (§2.3).
    pub fn new(name: impl Into<String>, needs_init: bool, modules: Vec<ModuleSpec>) -> Self {
        LibrarySpec {
            name: name.into(),
            needs_init,
            modules,
        }
    }

    /// Library (file) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the first launched kernel triggers a synchronizing init.
    pub fn needs_init(&self) -> bool {
        self.needs_init
    }

    /// Modules in the library.
    pub fn modules(&self) -> &[ModuleSpec] {
        &self.modules
    }
}

/// The full static software environment visible to a process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryCatalog {
    libs: Vec<LibrarySpec>,
    by_name: HashMap<String, usize>,
}

impl LibraryCatalog {
    /// Builds a catalog from library specs.
    ///
    /// # Panics
    ///
    /// Panics if two libraries share a name, or if a library has more than
    /// `u16::MAX` modules / kernels (catalogs are built by trusted model
    /// code).
    pub fn new(libs: Vec<LibrarySpec>) -> Arc<Self> {
        let mut by_name = HashMap::new();
        for (i, l) in libs.iter().enumerate() {
            assert!(l.modules.len() <= u16::MAX as usize);
            for m in &l.modules {
                assert!(m.kernels.len() <= u16::MAX as usize);
            }
            let prev = by_name.insert(l.name.clone(), i);
            assert!(prev.is_none(), "duplicate library name `{}`", l.name);
        }
        Arc::new(LibraryCatalog { libs, by_name })
    }

    /// Number of libraries.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }

    /// Library by index.
    pub fn lib(&self, idx: usize) -> &LibrarySpec {
        &self.libs[idx]
    }

    /// Library index by name.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::LibraryNotFound`] for unknown names.
    pub fn lib_index(&self, name: &str) -> GpuResult<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| GpuError::LibraryNotFound {
                library: name.to_string(),
            })
    }

    /// The module containing `kref`.
    pub fn module(&self, kref: KernelRef) -> &ModuleSpec {
        &self.libs[kref.lib as usize].modules[kref.module as usize]
    }

    /// The kernel definition for `kref`.
    pub fn kernel(&self, kref: KernelRef) -> &KernelDef {
        &self.module(kref).kernels()[kref.kernel as usize]
    }

    /// Finds a kernel by library + mangled name, scanning all modules.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::SymbolNotFound`] if the kernel does not exist in
    /// the library (regardless of export status — this is catalog ground
    /// truth, not a dlsym).
    pub fn find_kernel(&self, lib_name: &str, kernel_name: &str) -> GpuResult<KernelRef> {
        let lib = self.lib_index(lib_name)?;
        for (mi, m) in self.libs[lib].modules.iter().enumerate() {
            for (ki, k) in m.kernels().iter().enumerate() {
                if k.name() == kernel_name {
                    return Ok(KernelRef {
                        lib: lib as u16,
                        module: mi as u16,
                        kernel: ki as u16,
                    });
                }
            }
        }
        Err(GpuError::SymbolNotFound {
            library: lib_name.to_string(),
            symbol: kernel_name.to_string(),
        })
    }

    /// Iterates over `(KernelRef, &KernelDef)` pairs of the whole catalog.
    pub fn iter_kernels(&self) -> impl Iterator<Item = (KernelRef, &KernelDef)> {
        self.libs.iter().enumerate().flat_map(|(li, l)| {
            l.modules.iter().enumerate().flat_map(move |(mi, m)| {
                m.kernels().iter().enumerate().map(move |(ki, k)| {
                    (
                        KernelRef {
                            lib: li as u16,
                            module: mi as u16,
                            kernel: ki as u16,
                        },
                        k,
                    )
                })
            })
        })
    }

    /// Total number of kernels across all libraries.
    pub fn kernel_count(&self) -> usize {
        self.iter_kernels().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{CostClass, KernelSig, ParamKind};

    fn k(name: &str, exported: bool) -> KernelDef {
        KernelDef::new(
            name,
            exported,
            KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
            CostClass::MemoryBound,
        )
    }

    fn catalog() -> Arc<LibraryCatalog> {
        LibraryCatalog::new(vec![
            LibrarySpec::new(
                "libmodel.so",
                false,
                vec![ModuleSpec::new(
                    "elementwise",
                    vec![k("add", true), k("norm", true)],
                )],
            ),
            LibrarySpec::new(
                "libcublas_sim.so",
                true,
                vec![
                    ModuleSpec::new("gemm_a", vec![k("ampere_gemm_1", false)]),
                    ModuleSpec::new(
                        "gemm_b",
                        vec![k("ampere_gemm_2", false), k("splitk", false)],
                    ),
                ],
            ),
        ])
    }

    #[test]
    fn lookup_by_name_and_ref() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lib_index("libcublas_sim.so").unwrap(), 1);
        assert!(matches!(
            c.lib_index("nope.so"),
            Err(GpuError::LibraryNotFound { .. })
        ));
        let r = c.find_kernel("libcublas_sim.so", "splitk").unwrap();
        assert_eq!(
            r,
            KernelRef {
                lib: 1,
                module: 1,
                kernel: 1
            }
        );
        assert_eq!(c.kernel(r).name(), "splitk");
        assert_eq!(c.module(r).name(), "gemm_b");
        assert!(matches!(
            c.find_kernel("libmodel.so", "splitk"),
            Err(GpuError::SymbolNotFound { .. })
        ));
    }

    #[test]
    fn iter_kernels_covers_everything() {
        let c = catalog();
        assert_eq!(c.kernel_count(), 5);
        let names: Vec<_> = c
            .iter_kernels()
            .map(|(_, k)| k.name().to_string())
            .collect();
        assert!(names.contains(&"ampere_gemm_2".to_string()));
    }

    #[test]
    #[should_panic(expected = "duplicate library name")]
    fn duplicate_names_rejected() {
        LibraryCatalog::new(vec![
            LibrarySpec::new("a.so", false, vec![]),
            LibrarySpec::new("a.so", false, vec![]),
        ]);
    }

    #[test]
    fn init_flag_is_preserved() {
        let c = catalog();
        assert!(!c.lib(0).needs_init());
        assert!(c.lib(1).needs_init());
    }
}
