//! Simulated persistent storage (the paper's 4 × Optane P5800X array).
//!
//! Weight loading streams tensors from storage into device memory; its
//! duration is bandwidth-dominated. Interference with a concurrently running
//! profiling forwarding (paper §7.3) is applied by the pipeline via
//! [`crate::clock::CostModel::h2d_interference_factor`].

use crate::clock::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};

/// A bandwidth/latency model of the storage array feeding the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimStorage {
    bandwidth: f64,
    seek_ns: u64,
}

impl SimStorage {
    /// Creates a storage model with `bandwidth` bytes/s aggregate throughput
    /// and `seek_ns` fixed latency per read burst.
    pub fn new(bandwidth: f64, seek_ns: u64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        SimStorage { bandwidth, seek_ns }
    }

    /// The storage model implied by a cost model's calibrated constants.
    pub fn from_cost_model(cost: &CostModel) -> Self {
        SimStorage::new(cost.storage_bandwidth, cost.storage_seek_ns)
    }

    /// Aggregate read bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Duration of reading `bytes` in one streaming burst.
    pub fn read_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.seek_ns)
            + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Duration of a storage→device pipeline moving `bytes`, limited by the
    /// slower of storage and the host-to-device link, with an optional
    /// slowdown factor in `(0, 1]` modelling GPU-side interference.
    pub fn pipelined_to_device(
        &self,
        bytes: u64,
        h2d_bandwidth: f64,
        slowdown: f64,
    ) -> SimDuration {
        assert!(
            slowdown > 0.0 && slowdown <= 1.0,
            "slowdown must be in (0, 1]"
        );
        let eff = self.bandwidth.min(h2d_bandwidth) * slowdown;
        SimDuration::from_nanos(self.seek_ns) + SimDuration::from_secs_f64(bytes as f64 / eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_duration_is_bandwidth_plus_seek() {
        let s = SimStorage::new(10e9, 1_000);
        let d = s.read_duration(10_000_000_000);
        assert_eq!(d.as_nanos(), 1_000 + 1_000_000_000);
    }

    #[test]
    fn pipeline_takes_min_bandwidth() {
        let s = SimStorage::new(20e9, 0);
        // h2d slower than storage: h2d dominates.
        let d = s.pipelined_to_device(20_000_000_000, 10e9, 1.0);
        assert_eq!(d.as_nanos(), 2_000_000_000);
        // storage slower than h2d: storage dominates.
        let d2 = s.pipelined_to_device(20_000_000_000, 40e9, 1.0);
        assert_eq!(d2.as_nanos(), 1_000_000_000);
    }

    #[test]
    fn interference_slows_the_pipeline() {
        let s = SimStorage::new(20e9, 0);
        let base = s.pipelined_to_device(1 << 30, 20e9, 1.0);
        let slowed = s.pipelined_to_device(1 << 30, 20e9, 0.5);
        assert_eq!(slowed.as_nanos(), base.as_nanos() * 2);
    }

    #[test]
    fn calibrated_weights_load_matches_paper_scale() {
        // Qwen1.5 4B: 7.4 GB in ~0.39 s on the paper's testbed (Fig. 8a).
        let cm = CostModel::default();
        let s = SimStorage::from_cost_model(&cm);
        let d = s.pipelined_to_device(7_400_000_000, cm.h2d_bandwidth, 1.0);
        let secs = d.as_secs_f64();
        assert!(
            (0.30..0.48).contains(&secs),
            "weights load {secs}s out of calibrated band"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        SimStorage::new(0.0, 0);
    }
}
