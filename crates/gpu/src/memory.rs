//! Simulated device memory: a caching allocator with per-process address
//! non-determinism.
//!
//! Two properties matter for Medusa:
//!
//! 1. **Addresses are non-deterministic across process launches** (paper
//!    challenge I). We model this with a per-process ASLR-style base offset
//!    plus seeded jitter in free-list reuse decisions, so the *i*-th
//!    allocation of two launches may or may not land on the same relative
//!    address.
//! 2. **Control flow is deterministic**: given the same allocation call
//!    sequence, the allocator's observable *sequence* (sizes, order, live
//!    ranges at any instant) is identical — which is exactly the invariant
//!    Medusa's indirect index pointers exploit.
//!
//! Buffers also carry *contents*: a 16-byte digest standing in for the real
//! data. Kernels fold input digests into output digests, so a restoration
//! that patches a wrong pointer produces an observably different output.

use crate::error::{GpuError, GpuResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Minimum allocation alignment, matching the CUDA caching allocator.
pub const ALLOC_ALIGN: u64 = 256;

/// Base of the simulated device virtual address range. High enough that the
/// "high address prefix" pointer heuristic of paper §4 is meaningful.
pub const DEVICE_REGION_BASE: u64 = 0x0007_2000_0000_0000;

/// Size of the per-process ASLR window applied to the region base.
const ASLR_WINDOW: u64 = 1 << 36;

/// A pointer into simulated device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevicePtr(u64);

impl DevicePtr {
    /// The null device pointer.
    pub const NULL: DevicePtr = DevicePtr(0);

    /// Wraps a raw address. Primarily for reconstructing pointers that were
    /// round-tripped through a CUDA graph node's raw parameter buffer.
    pub const fn from_addr(addr: u64) -> Self {
        DevicePtr(addr)
    }

    /// The raw 64-bit address.
    pub const fn addr(self) -> u64 {
        self.0
    }

    /// A pointer `bytes` past `self` (interior pointer into a buffer).
    pub const fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }

    /// Whether the address looks like a device pointer to the paper's
    /// high-address-prefix heuristic (§4: "pointers are 8 bytes long and
    /// usually begin with a high address prefix").
    pub fn has_device_prefix(addr: u64) -> bool {
        (DEVICE_REGION_BASE..DEVICE_REGION_BASE + (1 << 44)).contains(&addr)
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Why a buffer was allocated. Tags are *not* consulted by Medusa's analysis
/// (which must infer buffer roles from timing alone, §4.3); they exist so
/// tests can assert the inference was right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocTag {
    /// Model weight tensor, allocated during structure initialization.
    Weights,
    /// Forward-pass activation / intermediate buffer.
    Activation,
    /// KV-cache block pool.
    KvCache,
    /// Kernel workspace (e.g. cuBLAS scratch, magic-number launch buffers).
    Workspace,
    /// Anything else.
    Other,
}

/// A live allocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    base: u64,
    size: u64,
    seq: u64,
    tag: AllocTag,
}

impl Allocation {
    /// Base device address.
    pub fn base(&self) -> DevicePtr {
        DevicePtr(self.base)
    }

    /// Size in bytes (alignment-rounded).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Position in the process-global allocation sequence (0-based): this is
    /// the "index in the buffer allocation sequence" of paper §4.1.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The debugging tag supplied at allocation time.
    pub fn tag(&self) -> AllocTag {
        self.tag
    }

    /// Whether `addr` falls inside `[base, base + size)`.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// 16-byte content digest standing in for a buffer's real bytes.
pub type Digest = [u8; 16];

/// Aggregate memory statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Bytes currently allocated.
    pub in_use: u64,
    /// High-water mark of `in_use` since the last [`DeviceMemory::reset_peak`].
    pub peak: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
    /// Number of live allocations.
    pub live_allocations: usize,
    /// Total allocations ever made (== next allocation's sequence index).
    pub total_allocations: u64,
    /// Allocations that were satisfied by free-list reuse.
    pub reused_allocations: u64,
}

/// The simulated device memory of one process.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    region_base: u64,
    cursor: u64,
    free_lists: HashMap<u64, Vec<u64>>,
    live: BTreeMap<u64, Allocation>,
    contents: HashMap<u64, Digest>,
    ptr_tables: HashMap<u64, Vec<u64>>,
    alloc_seq: u64,
    in_use: u64,
    peak: u64,
    reused: u64,
    rng: SmallRng,
    reuse_skip_prob: f64,
}

impl DeviceMemory {
    /// Probability that a reusable cached block is skipped in favour of fresh
    /// memory. Models cross-launch allocator timing non-determinism; see
    /// paper Figure 6.
    pub const DEFAULT_REUSE_SKIP_PROB: f64 = 0.12;

    /// Creates the memory view of a fresh process with `capacity` bytes.
    ///
    /// `seed` determines the ASLR base and the reuse jitter; two processes
    /// with different seeds observe different addresses for the same
    /// allocation sequence.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_reuse_skip_prob(capacity, seed, Self::DEFAULT_REUSE_SKIP_PROB)
    }

    /// Like [`DeviceMemory::new`] with an explicit reuse-skip probability
    /// (0.0 makes the allocator fully deterministic given the call sequence).
    pub fn with_reuse_skip_prob(capacity: u64, seed: u64, reuse_skip_prob: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let aslr = (rng.gen::<u64>() % ASLR_WINDOW) & !(ALLOC_ALIGN - 1);
        DeviceMemory {
            capacity,
            region_base: DEVICE_REGION_BASE + aslr,
            cursor: 0,
            free_lists: HashMap::new(),
            live: BTreeMap::new(),
            contents: HashMap::new(),
            ptr_tables: HashMap::new(),
            alloc_seq: 0,
            in_use: 0,
            peak: 0,
            reused: 0,
            rng,
            reuse_skip_prob,
        }
    }

    /// Allocates `size` bytes (rounded up to [`ALLOC_ALIGN`]).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfMemory`] if the allocation would exceed
    /// device capacity.
    pub fn alloc(&mut self, size: u64, tag: AllocTag) -> GpuResult<DevicePtr> {
        let size = round_up(size.max(1), ALLOC_ALIGN);
        if self.in_use + size > self.capacity {
            return Err(GpuError::OutOfMemory {
                requested: size,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        let reuse = match self.free_lists.get(&size) {
            Some(list) if !list.is_empty() => self.rng.gen::<f64>() >= self.reuse_skip_prob,
            _ => false,
        };
        let base = if reuse {
            self.reused += 1;
            self.free_lists
                .get_mut(&size)
                .expect("checked nonempty")
                .pop()
                .expect("nonempty")
        } else {
            let b = self.region_base + self.cursor;
            self.cursor += size;
            b
        };
        let alloc = Allocation {
            base,
            size,
            seq: self.alloc_seq,
            tag,
        };
        self.alloc_seq += 1;
        self.in_use += size;
        self.peak = self.peak.max(self.in_use);
        self.live.insert(base, alloc);
        Ok(DevicePtr(base))
    }

    /// Frees an allocation by its base pointer, returning its size.
    ///
    /// Contents are *not* cleared: like real device memory, stale bytes
    /// remain observable if the address is later reused.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidFree`] if `ptr` is not a live base.
    pub fn free(&mut self, ptr: DevicePtr) -> GpuResult<u64> {
        let alloc = self
            .live
            .remove(&ptr.0)
            .ok_or(GpuError::InvalidFree { addr: ptr.0 })?;
        self.in_use -= alloc.size;
        self.free_lists
            .entry(alloc.size)
            .or_default()
            .push(alloc.base);
        Ok(alloc.size)
    }

    /// The live allocation containing `addr`, if any (supports interior
    /// pointers: paper §4.1 matches "identical or within the range").
    pub fn containing(&self, addr: u64) -> Option<&Allocation> {
        let (_, alloc) = self.live.range(..=addr).next_back()?;
        alloc.contains(addr).then_some(alloc)
    }

    /// Whether `ptr` is the base of a live allocation.
    pub fn is_live_base(&self, ptr: DevicePtr) -> bool {
        self.live.contains_key(&ptr.0)
    }

    /// Writes the content digest of the allocation containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidPointer`] if `addr` is not inside a live
    /// allocation.
    pub fn write_digest(&mut self, addr: u64, digest: Digest) -> GpuResult<()> {
        let base = self
            .containing(addr)
            .ok_or(GpuError::InvalidPointer { addr })?
            .base;
        self.contents.insert(base, digest);
        Ok(())
    }

    /// Reads the content digest of the allocation containing `addr`.
    /// Uninitialized (never-written) buffers read as the zero digest —
    /// including stale content left by a previous occupant of a reused
    /// address, which is how wrong restorations become observable.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidPointer`] if `addr` is not inside a live
    /// allocation.
    pub fn read_digest(&self, addr: u64) -> GpuResult<Digest> {
        let base = self
            .containing(addr)
            .ok_or(GpuError::InvalidPointer { addr })?
            .base;
        Ok(self.contents.get(&base).copied().unwrap_or([0u8; 16]))
    }

    /// Writes a pointer-table content into the allocation containing
    /// `addr` (indirect pointers, paper §8): the buffer holds an array of
    /// device pointers that kernels with
    /// [`crate::ParamKind::PtrArrayIn`] parameters dereference.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidPointer`] if `addr` is not inside a live
    /// allocation.
    pub fn write_ptr_table(&mut self, addr: u64, table: Vec<u64>) -> GpuResult<()> {
        let base = self
            .containing(addr)
            .ok_or(GpuError::InvalidPointer { addr })?
            .base;
        self.ptr_tables.insert(base, table);
        Ok(())
    }

    /// Reads the pointer table stored in the allocation containing `addr`
    /// (empty if none was ever written).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidPointer`] if `addr` is not inside a live
    /// allocation.
    pub fn read_ptr_table(&self, addr: u64) -> GpuResult<&[u64]> {
        let base = self
            .containing(addr)
            .ok_or(GpuError::InvalidPointer { addr })?
            .base;
        Ok(self.ptr_tables.get(&base).map_or(&[], Vec::as_slice))
    }

    /// Iterates over live allocations in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Allocation> {
        self.live.values()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            in_use: self.in_use,
            peak: self.peak,
            capacity: self.capacity,
            live_allocations: self.live.len(),
            total_allocations: self.alloc_seq,
            reused_allocations: self.reused,
        }
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// High-water mark since the last [`DeviceMemory::reset_peak`]. The KV
    /// cache profiling stage derives "available free GPU memory" from this.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Resets the high-water mark to the current usage.
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }

    /// The next allocation's sequence index.
    pub fn next_seq(&self) -> u64 {
        self.alloc_seq
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(1 << 30, 42)
    }

    #[test]
    fn alloc_rounds_and_aligns() {
        let mut m = mem();
        let p = m.alloc(100, AllocTag::Other).unwrap();
        assert_eq!(p.addr() % ALLOC_ALIGN, 0);
        let a = *m.containing(p.addr()).unwrap();
        assert_eq!(a.size(), 256);
        assert_eq!(a.seq(), 0);
        let q = m.alloc(1, AllocTag::Other).unwrap();
        assert_eq!(m.containing(q.addr()).unwrap().seq(), 1);
    }

    #[test]
    fn zero_sized_alloc_still_occupies_one_unit() {
        let mut m = mem();
        let p = m.alloc(0, AllocTag::Other).unwrap();
        assert_eq!(m.containing(p.addr()).unwrap().size(), ALLOC_ALIGN);
    }

    #[test]
    fn oom_is_reported() {
        let mut m = DeviceMemory::new(1024, 7);
        m.alloc(512, AllocTag::Other).unwrap();
        let err = m.alloc(1024, AllocTag::Other).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn free_returns_size_and_rejects_non_base() {
        let mut m = mem();
        let p = m.alloc(300, AllocTag::Other).unwrap();
        assert!(matches!(
            m.free(p.offset(8)),
            Err(GpuError::InvalidFree { .. })
        ));
        assert_eq!(m.free(p).unwrap(), 512);
        assert!(matches!(m.free(p), Err(GpuError::InvalidFree { .. })));
    }

    #[test]
    fn containing_supports_interior_pointers() {
        let mut m = mem();
        let p = m.alloc(1024, AllocTag::Activation).unwrap();
        let a = *m.containing(p.addr() + 1000).unwrap();
        assert_eq!(a.base(), p);
        assert!(
            m.containing(p.addr() + 1024).is_none()
                || m.containing(p.addr() + 1024).unwrap().base() != p
        );
    }

    #[test]
    fn addresses_differ_across_seeds_but_sequence_is_stable() {
        let seq = |seed: u64| -> Vec<(u64, u64)> {
            let mut m = DeviceMemory::with_reuse_skip_prob(1 << 30, seed, 0.0);
            (0..16)
                .map(|i| {
                    let p = m.alloc(256 * (i + 1), AllocTag::Other).unwrap();
                    let a = *m.containing(p.addr()).unwrap();
                    (a.seq(), a.size())
                })
                .collect()
        };
        // The *sequence* (index, size) is deterministic...
        assert_eq!(seq(1), seq(2));
        // ...but the raw addresses are not.
        let addrs = |seed: u64| -> Vec<u64> {
            let mut m = DeviceMemory::with_reuse_skip_prob(1 << 30, seed, 0.0);
            (0..4)
                .map(|_| m.alloc(256, AllocTag::Other).unwrap().addr())
                .collect()
        };
        assert_ne!(addrs(1), addrs(2), "ASLR must differ across process seeds");
    }

    #[test]
    fn free_list_reuse_returns_same_address_when_deterministic() {
        let mut m = DeviceMemory::with_reuse_skip_prob(1 << 30, 3, 0.0);
        let p = m.alloc(512, AllocTag::Other).unwrap();
        m.free(p).unwrap();
        let q = m.alloc(512, AllocTag::Other).unwrap();
        assert_eq!(p, q, "LIFO cache reuses the freed block");
        assert_eq!(m.stats().reused_allocations, 1);
    }

    #[test]
    fn reuse_jitter_can_skip_the_cache() {
        // With skip probability 1.0 the freed block is never reused.
        let mut m = DeviceMemory::with_reuse_skip_prob(1 << 30, 3, 1.0);
        let p = m.alloc(512, AllocTag::Other).unwrap();
        m.free(p).unwrap();
        let q = m.alloc(512, AllocTag::Other).unwrap();
        assert_ne!(p, q);
    }

    #[test]
    fn peak_tracking_and_reset() {
        let mut m = mem();
        let p = m.alloc(1 << 20, AllocTag::Activation).unwrap();
        let q = m.alloc(1 << 20, AllocTag::Activation).unwrap();
        m.free(p).unwrap();
        assert_eq!(m.peak(), 2 << 20);
        assert_eq!(m.in_use(), 1 << 20);
        m.reset_peak();
        assert_eq!(m.peak(), 1 << 20);
        m.free(q).unwrap();
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn digests_follow_the_containing_allocation() {
        let mut m = mem();
        let p = m.alloc(4096, AllocTag::Workspace).unwrap();
        let d: Digest = [7u8; 16];
        m.write_digest(p.addr() + 128, d).unwrap();
        assert_eq!(m.read_digest(p.addr() + 4000).unwrap(), d);
        assert!(matches!(
            m.read_digest(p.addr() + 4096),
            Err(GpuError::InvalidPointer { .. })
        ));
    }

    #[test]
    fn stale_content_survives_free_and_reuse() {
        let mut m = DeviceMemory::with_reuse_skip_prob(1 << 30, 3, 0.0);
        let p = m.alloc(512, AllocTag::Other).unwrap();
        m.write_digest(p.addr(), [9u8; 16]).unwrap();
        m.free(p).unwrap();
        let q = m.alloc(512, AllocTag::Other).unwrap();
        assert_eq!(q, p);
        // The new occupant sees the previous occupant's bytes until it writes.
        assert_eq!(m.read_digest(q.addr()).unwrap(), [9u8; 16]);
    }

    #[test]
    fn device_prefix_heuristic_matches_region() {
        let mut m = mem();
        let p = m.alloc(256, AllocTag::Other).unwrap();
        assert!(DevicePtr::has_device_prefix(p.addr()));
        assert!(!DevicePtr::has_device_prefix(42));
        assert!(!DevicePtr::has_device_prefix(0x7fff_0000_0000));
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let mut m = mem();
        let a = m.alloc(256, AllocTag::Other).unwrap();
        let _b = m.alloc(256, AllocTag::Other).unwrap();
        m.free(a).unwrap();
        let s = m.stats();
        assert_eq!(s.live_allocations, 1);
        assert_eq!(s.total_allocations, 2);
        assert_eq!(s.in_use, 256);
        assert_eq!(s.capacity, 1 << 30);
    }
}
