//! Error types for the simulated GPU driver.

use std::fmt;

/// Errors returned by the simulated CUDA driver and runtime.
///
/// Each variant corresponds to a failure mode of the real driver that the
/// Medusa paper's mechanisms must contend with (invalid restored pointers,
/// hidden symbols, capture-time restrictions, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum GpuError {
    /// Device memory exhausted: the allocation of `requested` bytes would
    /// exceed the device capacity given `in_use` live bytes.
    OutOfMemory {
        requested: u64,
        in_use: u64,
        capacity: u64,
    },
    /// A pointer did not fall inside any live device allocation.
    InvalidPointer { addr: u64 },
    /// `cudaFree` of an address that is not the base of a live allocation.
    InvalidFree { addr: u64 },
    /// A kernel launch used an address that is not a known device function
    /// (wrong address, or its module is not loaded).
    InvalidDeviceFunction { addr: u64 },
    /// `dlsym` could not find the symbol: it does not exist in the library.
    SymbolNotFound { library: String, symbol: String },
    /// The symbol exists in the library but is hidden from the dynamic symbol
    /// table (e.g. closed-source cuBLAS kernels, paper §5).
    SymbolHidden { library: String, symbol: String },
    /// `dlopen` target does not exist in the library catalog.
    LibraryNotFound { library: String },
    /// Operation requires a library that has not been `dlopen`ed.
    LibraryNotLoaded { library: String },
    /// Module enumeration attempted on a module the driver has not loaded.
    ModuleNotLoaded { library: String, module: String },
    /// A synchronizing CUDA call was issued while a stream capture was in
    /// progress; the capture is invalidated (paper §2.3 "warm-up").
    SyncDuringCapture { origin: String },
    /// A second concurrent capture was started in the same process
    /// (paper §2.2 "limitations of capturing").
    ConcurrentCapture,
    /// `end_capture` without a matching `begin_capture`.
    NotCapturing,
    /// Host-to-device copies are forbidden inside a capture in this model.
    MemcpyDuringCapture,
    /// Device-side allocating kernels cannot be stream-captured in this
    /// model (paper §8 scope).
    DeviceAllocDuringCapture,
    /// The launched parameter list does not match the kernel signature.
    ParamMismatch {
        kernel: String,
        expected: usize,
        got: usize,
    },
    /// A kernel read an input pointer that does not reference a live buffer.
    DanglingRead { kernel: String, addr: u64 },
    /// A kernel write targeted a pointer outside any live buffer.
    DanglingWrite { kernel: String, addr: u64 },
    /// An unknown stream identifier was used.
    InvalidStream { stream: u32 },
    /// An unknown event identifier was used.
    InvalidEvent { event: u32 },
}

impl GpuError {
    /// Stable machine-readable identifier for this error class.
    ///
    /// Used as a telemetry label and for matching in tests; the strings are
    /// part of the public contract and never change once released.
    pub fn kind(&self) -> &'static str {
        match self {
            GpuError::OutOfMemory { .. } => "gpu_oom",
            GpuError::InvalidPointer { .. } => "gpu_invalid_pointer",
            GpuError::InvalidFree { .. } => "gpu_invalid_free",
            GpuError::InvalidDeviceFunction { .. } => "gpu_invalid_device_function",
            GpuError::SymbolNotFound { .. } => "gpu_symbol_not_found",
            GpuError::SymbolHidden { .. } => "gpu_symbol_hidden",
            GpuError::LibraryNotFound { .. } => "gpu_library_not_found",
            GpuError::LibraryNotLoaded { .. } => "gpu_library_not_loaded",
            GpuError::ModuleNotLoaded { .. } => "gpu_module_not_loaded",
            GpuError::SyncDuringCapture { .. } => "gpu_sync_during_capture",
            GpuError::ConcurrentCapture => "gpu_concurrent_capture",
            GpuError::NotCapturing => "gpu_not_capturing",
            GpuError::MemcpyDuringCapture => "gpu_memcpy_during_capture",
            GpuError::DeviceAllocDuringCapture => "gpu_device_alloc_during_capture",
            GpuError::ParamMismatch { .. } => "gpu_param_mismatch",
            GpuError::DanglingRead { .. } => "gpu_dangling_read",
            GpuError::DanglingWrite { .. } => "gpu_dangling_write",
            GpuError::InvalidStream { .. } => "gpu_invalid_stream",
            GpuError::InvalidEvent { .. } => "gpu_invalid_event",
        }
    }
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes with {in_use}/{capacity} in use"
            ),
            GpuError::InvalidPointer { addr } => {
                write!(
                    f,
                    "pointer {addr:#x} is not inside a live device allocation"
                )
            }
            GpuError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not a live allocation base")
            }
            GpuError::InvalidDeviceFunction { addr } => {
                write!(f, "address {addr:#x} is not a loaded device function")
            }
            GpuError::SymbolNotFound { library, symbol } => {
                write!(f, "symbol `{symbol}` not found in `{library}`")
            }
            GpuError::SymbolHidden { library, symbol } => {
                write!(
                    f,
                    "symbol `{symbol}` exists in `{library}` but is hidden from dlsym"
                )
            }
            GpuError::LibraryNotFound { library } => {
                write!(f, "library `{library}` not present in the catalog")
            }
            GpuError::LibraryNotLoaded { library } => {
                write!(f, "library `{library}` has not been dlopen()ed")
            }
            GpuError::ModuleNotLoaded { library, module } => {
                write!(
                    f,
                    "module `{module}` of `{library}` is not loaded by the driver"
                )
            }
            GpuError::SyncDuringCapture { origin } => {
                write!(
                    f,
                    "synchronizing call from `{origin}` invalidated the stream capture"
                )
            }
            GpuError::ConcurrentCapture => {
                write!(f, "a stream capture is already in progress in this process")
            }
            GpuError::NotCapturing => write!(f, "end_capture called with no active capture"),
            GpuError::MemcpyDuringCapture => {
                write!(f, "host-to-device copy issued during stream capture")
            }
            GpuError::DeviceAllocDuringCapture => {
                write!(
                    f,
                    "device-side allocating kernel launched during stream capture"
                )
            }
            GpuError::ParamMismatch {
                kernel,
                expected,
                got,
            } => {
                write!(
                    f,
                    "kernel `{kernel}` expects {expected} parameters, got {got}"
                )
            }
            GpuError::DanglingRead { kernel, addr } => {
                write!(f, "kernel `{kernel}` read dangling pointer {addr:#x}")
            }
            GpuError::DanglingWrite { kernel, addr } => {
                write!(
                    f,
                    "kernel `{kernel}` wrote through dangling pointer {addr:#x}"
                )
            }
            GpuError::InvalidStream { stream } => write!(f, "invalid stream id {stream}"),
            GpuError::InvalidEvent { event } => write!(f, "invalid event id {event}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Convenience alias used throughout the driver simulation.
pub type GpuResult<T> = Result<T, GpuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errs: Vec<GpuError> = vec![
            GpuError::OutOfMemory {
                requested: 1,
                in_use: 2,
                capacity: 3,
            },
            GpuError::InvalidPointer { addr: 0xdead },
            GpuError::InvalidFree { addr: 0xbeef },
            GpuError::InvalidDeviceFunction { addr: 0x1 },
            GpuError::SymbolNotFound {
                library: "l".into(),
                symbol: "s".into(),
            },
            GpuError::SymbolHidden {
                library: "l".into(),
                symbol: "s".into(),
            },
            GpuError::LibraryNotFound {
                library: "l".into(),
            },
            GpuError::LibraryNotLoaded {
                library: "l".into(),
            },
            GpuError::ModuleNotLoaded {
                library: "l".into(),
                module: "m".into(),
            },
            GpuError::SyncDuringCapture {
                origin: "cublas_init".into(),
            },
            GpuError::ConcurrentCapture,
            GpuError::NotCapturing,
            GpuError::MemcpyDuringCapture,
            GpuError::DeviceAllocDuringCapture,
            GpuError::ParamMismatch {
                kernel: "k".into(),
                expected: 3,
                got: 2,
            },
            GpuError::DanglingRead {
                kernel: "k".into(),
                addr: 0x2,
            },
            GpuError::DanglingWrite {
                kernel: "k".into(),
                addr: 0x3,
            },
            GpuError::InvalidStream { stream: 9 },
            GpuError::InvalidEvent { event: 9 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            // Error messages follow std conventions: no trailing period.
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
    }
}
