//! Dependency-free telemetry substrate for the Medusa reproduction.
//!
//! Everything in this crate is driven by the **simulated clock** — span
//! timestamps and histogram samples are microsecond values derived from
//! [`SimTime`-style](https://crates.io/crates/medusa-gpu) virtual
//! nanoseconds, never from host wall clock. Combined with deterministic
//! snapshots (sorted maps, stable span ordering) this makes same-seed
//! runs export **byte-identical** telemetry, which is what lets CI diff
//! exported artifacts directly.
//!
//! Three primitives live in a [`Registry`]:
//!
//! - **counters** — monotonically increasing `u64` totals,
//! - **gauges** — last-value or [`Registry::gauge_max`] high-water marks
//!   (the `max` form is commutative, so concurrent rank threads stay
//!   deterministic),
//! - **histograms** — fixed log-scale buckets (a 1-2-5 decade series, see
//!   [`bucket_bounds_us`]) so bucket boundaries are integers and stable
//!   across platforms and float environments.
//!
//! Structured [`SpanRecord`] events capture the cold-start stage timeline
//! (name, lane, `[start_us, end_us)`, parent). Two exporters turn a
//! [`Snapshot`] into text artifacts:
//!
//! - [`export::prometheus`] — Prometheus text exposition format,
//! - [`export::chrome`] — Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of finite histogram bucket boundaries.
pub const FINITE_BUCKETS: usize = 30;

/// The fixed histogram bucket upper bounds, in microseconds.
///
/// A 1-2-5 log-scale series over ten decades: `1, 2, 5, 10, 20, 50, ...,
/// 1e9, 2e9, 5e9`. All bounds are exact integers, so bucketing never
/// depends on floating-point rounding and is identical on every platform.
/// A final implicit `+Inf` bucket catches anything above 5 000 seconds.
pub const fn bucket_bounds_us() -> [u64; FINITE_BUCKETS] {
    let mut out = [0u64; FINITE_BUCKETS];
    let mut decade = 1u64;
    let mut i = 0;
    while i < FINITE_BUCKETS {
        out[i] = decade;
        out[i + 1] = 2 * decade;
        out[i + 2] = 5 * decade;
        i += 3;
        decade *= 10;
    }
    out
}

/// One structured span event: a named interval on a lane, with optional
/// parent linkage (the name of the span it was causally bound to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (for cold starts: the stage name, optionally
    /// `rank{r}/`-prefixed under tensor parallelism).
    pub name: String,
    /// Execution lane the span ran on (`device` / `host` / `storage`,
    /// optionally `/rank{r}`-suffixed).
    pub lane: String,
    /// Start, in simulated microseconds.
    pub start_us: u64,
    /// End, in simulated microseconds.
    pub end_us: u64,
    /// Name of the parent span this one was bound to, if any.
    pub parent: Option<String>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Cumulative state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; `counts[FINITE_BUCKETS]` is the
    /// overflow (`+Inf`) bucket. Buckets are **not** cumulative here; the
    /// Prometheus exporter accumulates them into `le` form.
    pub counts: [u64; FINITE_BUCKETS + 1],
    /// Sum of all observed values, in microseconds.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn new() -> Self {
        HistogramSnapshot {
            counts: [0; FINITE_BUCKETS + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value_us: u64) {
        let bounds = bucket_bounds_us();
        let idx = bounds
            .iter()
            .position(|&b| value_us <= b)
            .unwrap_or(FINITE_BUCKETS);
        self.counts[idx] += 1;
        self.sum += value_us;
        self.count += 1;
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
    spans: Vec<SpanRecord>,
}

/// A thread-safe registry of counters, gauges, histograms, and spans.
///
/// All mutation goes through `&self` (internally a mutex), so one
/// registry can be shared across the per-rank threads of a tensor-parallel
/// cold start. Determinism is preserved because every write is either
/// keyed by a rank-distinct name or commutative (`inc`, `observe_us`,
/// `gauge_max`), and [`Registry::snapshot`] sorts spans into a canonical
/// order.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments counter `name` by `by` (creating it at zero first).
    pub fn inc(&self, name: &str, by: u64) {
        let mut g = self.inner.lock().expect("telemetry poisoned");
        *g.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Increments the labeled counter `{base}_{label}_total` by `by`. The
    /// label is sanitized to `[a-z0-9_]` (anything else becomes `_`) so
    /// error kinds and fault names can be used verbatim without producing
    /// invalid Prometheus metric names.
    pub fn inc_labeled(&self, base: &str, label: &str, by: u64) {
        let clean: String = label
            .chars()
            .map(|c| {
                let c = c.to_ascii_lowercase();
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.inc(&format!("{base}_{clean}_total"), by);
    }

    /// Sets gauge `name` to `value` (last write wins — use only from a
    /// single thread; prefer [`Registry::gauge_max`] under concurrency).
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut g = self.inner.lock().expect("telemetry poisoned");
        g.gauges.insert(name.to_string(), value);
    }

    /// Raises gauge `name` to `value` if `value` is larger (high-water
    /// mark; commutative, hence safe from concurrent rank threads).
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut g = self.inner.lock().expect("telemetry poisoned");
        let e = g.gauges.entry(name.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Records one observation (in microseconds) into histogram `name`.
    pub fn observe_us(&self, name: &str, value_us: u64) {
        let mut g = self.inner.lock().expect("telemetry poisoned");
        g.histograms
            .entry(name.to_string())
            .or_insert_with(HistogramSnapshot::new)
            .observe(value_us);
    }

    /// Appends a span event.
    pub fn record_span(&self, span: SpanRecord) {
        let mut g = self.inner.lock().expect("telemetry poisoned");
        g.spans.push(span);
    }

    /// Records a parentless interval span — convenience over
    /// [`Registry::record_span`] for callers (e.g. the cluster simulator's
    /// scheduler decisions) that build name and lane on the fly.
    pub fn span(
        &self,
        name: impl Into<String>,
        lane: impl Into<String>,
        start_us: u64,
        end_us: u64,
    ) {
        self.record_span(SpanRecord {
            name: name.into(),
            lane: lane.into(),
            start_us,
            end_us,
            parent: None,
        });
    }

    /// Takes a deterministic snapshot: metric maps are sorted by name
    /// (`BTreeMap` order) and spans by `(start, end, lane, name)`, so the
    /// result is independent of thread interleaving.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().expect("telemetry poisoned");
        let mut spans = g.spans.clone();
        spans.sort_by(|a, b| {
            (a.start_us, a.end_us, &a.lane, &a.name, &a.parent)
                .cmp(&(b.start_us, b.end_us, &b.lane, &b.name, &b.parent))
        });
        Snapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            spans,
        }
    }
}

/// An immutable, canonically ordered view of a [`Registry`], consumed by
/// the exporters in [`export`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, total)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span events sorted by `(start_us, end_us, lane, name, parent)`.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Finds the first span with this exact name.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_the_1_2_5_decade_series() {
        let b = bucket_bounds_us();
        assert_eq!(b[0..6], [1, 2, 5, 10, 20, 50]);
        assert_eq!(b[FINITE_BUCKETS - 1], 5_000_000_000);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn histogram_buckets_values_on_boundaries() {
        let mut h = HistogramSnapshot::new();
        h.observe(0); // <= 1 → bucket 0
        h.observe(1); // boundary is inclusive
        h.observe(2);
        h.observe(3); // <= 5 → bucket 2
        h.observe(6_000_000_000); // above the last bound → +Inf
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[FINITE_BUCKETS], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 6_000_000_006);
    }

    #[test]
    fn snapshot_is_independent_of_write_interleaving() {
        let build = |order_flipped: bool| {
            let r = Registry::new();
            let writes: [&dyn Fn(); 2] = [
                &|| {
                    r.inc("a_total", 1);
                    r.gauge_max("hw", 5);
                    r.observe_us("lat_us", 10);
                    r.record_span(SpanRecord {
                        name: "x".into(),
                        lane: "host".into(),
                        start_us: 3,
                        end_us: 9,
                        parent: None,
                    });
                },
                &|| {
                    r.inc("a_total", 2);
                    r.gauge_max("hw", 3);
                    r.observe_us("lat_us", 40);
                    r.record_span(SpanRecord {
                        name: "y".into(),
                        lane: "device".into(),
                        start_us: 1,
                        end_us: 2,
                        parent: Some("x".into()),
                    });
                },
            ];
            if order_flipped {
                writes[1]();
                writes[0]();
            } else {
                writes[0]();
                writes[1]();
            }
            r.snapshot()
        };
        assert_eq!(build(false), build(true));
        let snap = build(false);
        assert_eq!(snap.counter("a_total"), Some(3));
        assert_eq!(snap.gauge("hw"), Some(5));
        assert_eq!(snap.spans[0].name, "y", "sorted by start time");
    }

    #[test]
    fn labeled_counters_sanitize_the_label() {
        let r = Registry::new();
        r.inc_labeled("coldstart_fallback", "checksum_mismatch", 1);
        r.inc_labeled("coldstart_fallback", "checksum_mismatch", 2);
        r.inc_labeled("coldstart_fallback", "Weird-Kind!", 1);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("coldstart_fallback_checksum_mismatch_total"),
            Some(3)
        );
        assert_eq!(
            snap.counter("coldstart_fallback_weird_kind__total"),
            Some(1)
        );
    }

    #[test]
    fn registry_is_safe_across_threads() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.inc("n_total", 1);
                        r.observe_us("v_us", 7);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("n_total"), Some(400));
        assert_eq!(snap.histogram("v_us").unwrap().count, 400);
    }
}
