//! Prometheus text exposition format.
//!
//! Renders counters, gauges, and histograms in the classic
//! [text format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! one `# TYPE` line per metric, histogram buckets as cumulative
//! `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
//! `_count`. All metric names get a `medusa_` namespace prefix. Spans are
//! not part of the Prometheus model; export those via
//! [`crate::export::chrome`].

use crate::{bucket_bounds_us, Snapshot};
use std::fmt::Write as _;

/// Renders `snapshot` as Prometheus exposition text.
///
/// Output is fully determined by the snapshot (metrics are pre-sorted by
/// name), so same-seed runs render byte-identical text.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = format!("medusa_{name}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = format!("medusa_{name}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let name = format!("medusa_{name}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in bucket_bounds_us().iter().zip(hist.counts.iter()) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += hist.counts[hist.counts.len() - 1];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn renders_types_buckets_sum_and_count() {
        let r = Registry::new();
        r.inc("starts_total", 2);
        r.set_gauge("free_bytes", 7);
        r.observe_us("load_us", 3);
        r.observe_us("load_us", 3_000);
        let text = super::render(&r.snapshot());
        assert!(text.contains("# TYPE medusa_starts_total counter\nmedusa_starts_total 2\n"));
        assert!(text.contains("# TYPE medusa_free_bytes gauge\nmedusa_free_bytes 7\n"));
        assert!(text.contains("# TYPE medusa_load_us histogram"));
        // 3 lands in le=5; the series is cumulative from there on.
        assert!(text.contains("medusa_load_us_bucket{le=\"2\"} 0\n"));
        assert!(text.contains("medusa_load_us_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("medusa_load_us_bucket{le=\"5000\"} 2\n"));
        assert!(text.contains("medusa_load_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("medusa_load_us_sum 3003\n"));
        assert!(text.contains("medusa_load_us_count 2\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_text() {
        assert_eq!(super::render(&Registry::new().snapshot()), "");
    }
}
