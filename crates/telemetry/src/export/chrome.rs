//! Chrome `trace_event` JSON exporter.
//!
//! Renders spans as complete (`"ph":"X"`) events in the
//! [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>. Each
//! distinct lane becomes one "thread" row (named via `"M"` metadata
//! events), timestamps/durations are integer simulated microseconds, and
//! the span's parent name rides along in `args.parent`. Counters and
//! gauges are appended as `args` on a single summary metadata event so a
//! trace file is self-describing.

use crate::export::json_escape;
use crate::Snapshot;
use std::fmt::Write as _;

/// Renders `snapshot` as a Chrome `trace_event` JSON document.
///
/// Lanes are assigned `tid`s in sorted order and spans are emitted in
/// snapshot order, so same-seed runs render byte-identical JSON.
pub fn render(snapshot: &Snapshot) -> String {
    let mut lanes: Vec<&str> = snapshot.spans.iter().map(|s| s.lane.as_str()).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let tid_of = |lane: &str| lanes.iter().position(|&l| l == lane).unwrap_or(0);

    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"medusa-sim\"}}"
            .to_string(),
    );
    for (tid, lane) in lanes.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(lane)
        ));
    }
    for span in &snapshot.spans {
        let mut args = String::new();
        if let Some(parent) = &span.parent {
            let _ = write!(args, "\"parent\":\"{}\"", json_escape(parent));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
            json_escape(&span.name),
            json_escape(&span.lane),
            span.start_us,
            span.duration_us(),
            tid_of(&span.lane),
        ));
    }
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        let metrics: Vec<String> = snapshot
            .counters
            .iter()
            .chain(snapshot.gauges.iter())
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect();
        events.push(format!(
            "{{\"name\":\"metrics\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{{}}}}}",
            metrics.join(",")
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Registry, SpanRecord};

    fn sample() -> Registry {
        let r = Registry::new();
        r.record_span(SpanRecord {
            name: "weights load".into(),
            lane: "storage".into(),
            start_us: 10,
            end_us: 30,
            parent: Some("structure init".into()),
        });
        r.record_span(SpanRecord {
            name: "structure init".into(),
            lane: "device".into(),
            start_us: 0,
            end_us: 10,
            parent: None,
        });
        r.inc("coldstart_total", 1);
        r
    }

    #[test]
    fn emits_metadata_and_complete_events() {
        let json = super::render(&sample().snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"storage\"}"));
        assert!(json.contains(
            "{\"name\":\"weights load\",\"cat\":\"storage\",\"ph\":\"X\",\
             \"ts\":10,\"dur\":20,\"pid\":0,\"tid\":1,\
             \"args\":{\"parent\":\"structure init\"}}"
        ));
        assert!(json.contains("\"coldstart_total\":1"));
    }

    #[test]
    fn lane_tids_are_sorted_and_stable() {
        let json = super::render(&sample().snapshot());
        // "device" sorts before "storage" → tid 0 and 1.
        let device_meta = json.find("\"args\":{\"name\":\"device\"}").unwrap();
        let storage_meta = json.find("\"args\":{\"name\":\"storage\"}").unwrap();
        assert!(device_meta < storage_meta);
        assert!(json
            .contains("\"cat\":\"device\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":0,\"tid\":0"));
    }
}
