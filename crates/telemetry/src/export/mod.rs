//! Snapshot exporters.
//!
//! Both exporters are pure functions over a [`crate::Snapshot`], so the
//! determinism guarantee of [`crate::Registry::snapshot`] carries through
//! to the exported bytes: same seed → same snapshot → same artifact.

pub mod chrome;
pub mod prometheus;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\u{1}"), "x\\ny\\u0001");
        assert_eq!(json_escape("plain/rank0"), "plain/rank0");
    }
}
