//! Stream capture: building CUDA graphs the way vLLM does (paper §2.2).
//!
//! [`capture_graph`] wraps a closure in `begin_capture` / `end_capture` on
//! the process runtime: every kernel launched inside is recorded (not
//! executed) together with its dependencies, and assembled into a
//! [`CudaGraph`]. All capture-time restrictions of the driver apply: a
//! synchronizing call inside the closure aborts the capture with
//! [`medusa_gpu::GpuError::SyncDuringCapture`], which is why callers run a
//! *warm-up forwarding* first.

use crate::error::GraphResult;
use crate::graph::CudaGraph;
use medusa_gpu::{GpuResult, ProcessRuntime, StreamId};

/// Captures all kernels launched by `body` on `rt` into a CUDA graph.
///
/// # Errors
///
/// Propagates driver errors from `body` (including capture invalidation on
/// synchronizing calls) and from the capture machinery itself. On error the
/// runtime's capture state is always cleaned up.
///
/// # Example
///
/// See the crate-level docs for a complete capture-and-replay example.
pub fn capture_graph<F>(
    rt: &mut ProcessRuntime,
    stream: StreamId,
    body: F,
) -> GraphResult<CudaGraph>
where
    F: FnOnce(&mut ProcessRuntime) -> GpuResult<()>,
{
    rt.begin_capture(stream)?;
    if let Err(e) = body(rt) {
        // A sync error already aborted the capture; any other error leaves
        // it active and must be cleaned up here.
        if rt.is_capturing() {
            let _ = rt.end_capture();
        }
        return Err(e.into());
    }
    let launches = rt.end_capture()?;
    Ok(CudaGraph::from_captured(launches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_gpu::{
        AllocTag, CostClass, CostModel, GpuError, GpuSpec, KernelDef, KernelRef, KernelSig,
        LibraryCatalog, LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
    };
    use std::sync::Arc;

    fn rt() -> ProcessRuntime {
        let catalog: Arc<LibraryCatalog> = LibraryCatalog::new(vec![LibrarySpec::new(
            "lib.so",
            false,
            vec![ModuleSpec::new(
                "m",
                vec![KernelDef::new(
                    "k",
                    true,
                    KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
                    CostClass::MemoryBound,
                )],
            )],
        )]);
        let mut rt =
            ProcessRuntime::new(catalog, GpuSpec::new("t", 1 << 30), CostModel::default(), 1);
        rt.dlopen("lib.so").unwrap();
        rt
    }

    #[test]
    fn capture_builds_a_chained_graph() {
        let mut p = rt();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        // Warm-up loads the module.
        p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        let g = capture_graph(&mut p, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
            p.launch_kernel(addr, &[b.addr(), a.addr()], Work::NONE, 0)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edges(), &[(0, 1)]);
        assert_eq!(g.node(0).kernel_addr(), addr);
        assert_eq!(g.node(1).params().value(0), b.addr());
        assert!(!p.is_capturing());
    }

    #[test]
    fn capture_without_warmup_fails_and_cleans_up() {
        let catalog: Arc<LibraryCatalog> = LibraryCatalog::new(vec![LibrarySpec::new(
            "cublas.so",
            true, // needs lazy init → sync on first launch
            vec![ModuleSpec::new(
                "m",
                vec![KernelDef::new(
                    "g",
                    false,
                    KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
                    CostClass::ComputeBound,
                )],
            )],
        )]);
        let mut p =
            ProcessRuntime::new(catalog, GpuSpec::new("t", 1 << 30), CostModel::default(), 2);
        p.dlopen("cublas.so").unwrap();
        let addr = p
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
        p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
        let res = capture_graph(&mut p, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), a.addr()], Work::NONE, 0)
        });
        assert!(matches!(
            res,
            Err(crate::error::GraphError::Gpu(
                GpuError::SyncDuringCapture { .. }
            ))
        ));
        assert!(!p.is_capturing());
    }

    #[test]
    fn non_sync_body_error_still_ends_capture() {
        let mut p = rt();
        let res = capture_graph(&mut p, 0, |p| {
            // Launch at a bogus address: not a sync error, capture stays
            // active inside the driver and must be cleaned up by the wrapper.
            p.launch_kernel(0xdead, &[], Work::NONE, 0)
        });
        assert!(res.is_err());
        assert!(!p.is_capturing());
    }

    #[test]
    fn empty_capture_yields_empty_graph() {
        let mut p = rt();
        let g = capture_graph(&mut p, 0, |_| Ok(())).unwrap();
        assert!(g.is_empty());
    }
}
