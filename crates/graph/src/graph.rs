//! The CUDA graph data structure.
//!
//! Nodes are kernels, edges are execution dependencies (paper Figure 4).
//! Graphs are built either from a stream capture
//! ([`CudaGraph::from_captured`], the path vLLM uses) or with the explicit
//! node-by-node API ([`CudaGraph::add_kernel_node`] /
//! [`CudaGraph::add_dependency`], the `cudaGraphAddKernelNode` path the
//! paper describes as impractical for frameworks but which we support for
//! completeness and tests).

use crate::error::{GraphError, GraphResult};
use crate::node::GraphNode;
use medusa_gpu::{CapturedLaunch, ParamBuffer, StreamId, Work};
use serde::{Deserialize, Serialize};

/// A CUDA graph: kernel nodes plus dependency edges.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CudaGraph {
    nodes: Vec<GraphNode>,
    /// Capture-time stream of each node (used to lay out replay lanes).
    streams: Vec<StreamId>,
    /// Edges as (src, dst): dst executes after src.
    edges: Vec<(usize, usize)>,
}

impl CudaGraph {
    /// Creates an empty graph (explicit construction path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from a finished stream capture.
    pub fn from_captured(launches: Vec<CapturedLaunch>) -> Self {
        let mut g = CudaGraph::new();
        for (i, l) in launches.into_iter().enumerate() {
            g.nodes
                .push(GraphNode::new(l.kernel_addr, l.params, l.work));
            g.streams.push(l.stream);
            for d in l.deps {
                debug_assert!(d < i);
                g.edges.push((d, i));
            }
        }
        g
    }

    /// Explicit API: appends a kernel node, returning its index
    /// (`cudaGraphAddKernelNode` analogue).
    pub fn add_kernel_node(&mut self, kernel_addr: u64, params: ParamBuffer, work: Work) -> usize {
        self.nodes.push(GraphNode::new(kernel_addr, params, work));
        self.streams.push(0);
        self.nodes.len() - 1
    }

    /// Explicit API: adds a dependency edge `src → dst`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfEdge`]
    /// for malformed edges. Cycles are detected at instantiation.
    pub fn add_dependency(&mut self, src: usize, dst: usize) -> GraphResult<()> {
        let len = self.nodes.len();
        for &i in &[src, dst] {
            if i >= len {
                return Err(GraphError::NodeOutOfRange { index: i, len });
            }
        }
        if src == dst {
            return Err(GraphError::SelfEdge { index: src });
        }
        self.edges.push((src, dst));
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn node(&self, i: usize) -> &GraphNode {
        &self.nodes[i]
    }

    /// Mutable node access (restoration patches addresses and pointers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn node_mut(&mut self, i: usize) -> &mut GraphNode {
        &mut self.nodes[i]
    }

    /// Iterates over nodes in index order.
    pub fn iter(&self) -> impl Iterator<Item = &GraphNode> {
        self.nodes.iter()
    }

    /// Mutably iterates over nodes in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut GraphNode> {
        self.nodes.iter_mut()
    }

    /// The capture-time stream of node `i`.
    pub fn stream_of(&self, i: usize) -> StreamId {
        self.streams[i]
    }

    /// All dependency edges as `(src, dst)` pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Predecessor lists indexed by node.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for &(s, d) in &self.edges {
            preds[d].push(s);
        }
        preds
    }

    /// A topological order of the nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cyclic`] if the edges form a cycle.
    pub fn topo_order(&self) -> GraphResult<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succs = vec![Vec::new(); n];
        for &(s, d) in &self.edges {
            indeg[d] += 1;
            succs[s].push(d);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Stable order: lowest index first, matching capture order.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &d in &succs[i] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    // Keep the vector sorted descending so pop yields min.
                    let pos = ready.partition_point(|&x| x > d);
                    ready.insert(pos, d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cyclic)
        }
    }

    /// Total number of data-pointer-sized (8-byte) parameters across all
    /// nodes — a size statistic used in reporting.
    pub fn wide_param_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                (0..n.params().param_count())
                    .filter(|&i| n.params().size_of(i) == 8)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_gpu::{KernelSig, ParamKind};

    fn pb() -> ParamBuffer {
        ParamBuffer::encode(
            &KernelSig::new(vec![ParamKind::PtrIn, ParamKind::Scalar4]),
            &[0x0007_2000_0000_0000, 1],
        )
    }

    #[test]
    fn explicit_construction_and_edges() {
        let mut g = CudaGraph::new();
        let a = g.add_kernel_node(1, pb(), Work::NONE);
        let b = g.add_kernel_node(2, pb(), Work::NONE);
        let c = g.add_kernel_node(3, pb(), Work::NONE);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, c).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.predecessors()[c], vec![a, b]);
        assert_eq!(g.topo_order().unwrap(), vec![a, b, c]);
        assert!(matches!(
            g.add_dependency(0, 9),
            Err(GraphError::NodeOutOfRange { index: 9, len: 3 })
        ));
        assert!(matches!(
            g.add_dependency(1, 1),
            Err(GraphError::SelfEdge { index: 1 })
        ));
    }

    #[test]
    fn cycle_detection() {
        let mut g = CudaGraph::new();
        let a = g.add_kernel_node(1, pb(), Work::NONE);
        let b = g.add_kernel_node(2, pb(), Work::NONE);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, a).unwrap();
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
    }

    #[test]
    fn topo_order_prefers_capture_order() {
        let mut g = CudaGraph::new();
        for i in 0..5 {
            g.add_kernel_node(i, pb(), Work::NONE);
        }
        // Diamond: 0 → {1, 2} → 3, plus isolated 4.
        g.add_dependency(0, 1).unwrap();
        g.add_dependency(0, 2).unwrap();
        g.add_dependency(1, 3).unwrap();
        g.add_dependency(2, 3).unwrap();
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wide_param_count_counts_8_byte_params() {
        let mut g = CudaGraph::new();
        g.add_kernel_node(1, pb(), Work::NONE);
        g.add_kernel_node(2, pb(), Work::NONE);
        assert_eq!(g.wide_param_count(), 2);
    }
}
