//! Errors of the CUDA graph layer.

use medusa_gpu::GpuError;
use std::fmt;

/// Errors returned by graph construction, instantiation and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An underlying driver error (invalid kernel address, dangling pointer
    /// found during replay, ...).
    Gpu(GpuError),
    /// The graph's edges form a cycle and cannot be scheduled.
    Cyclic,
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge references itself.
    SelfEdge {
        /// The node with a self-edge.
        index: usize,
    },
}

impl GraphError {
    /// Stable machine-readable identifier for this error class.
    ///
    /// Driver-originated errors delegate to [`GpuError::kind`], so the
    /// namespace is flat across layers.
    pub fn kind(&self) -> &'static str {
        match self {
            GraphError::Gpu(e) => e.kind(),
            GraphError::Cyclic => "graph_cyclic",
            GraphError::NodeOutOfRange { .. } => "graph_node_out_of_range",
            GraphError::SelfEdge { .. } => "graph_self_edge",
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Gpu(e) => write!(f, "driver error: {e}"),
            GraphError::Cyclic => write!(f, "graph contains a dependency cycle"),
            GraphError::NodeOutOfRange { index, len } => {
                write!(
                    f,
                    "node index {index} out of range for graph of {len} nodes"
                )
            }
            GraphError::SelfEdge { index } => write!(f, "node {index} depends on itself"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for GraphError {
    fn from(e: GpuError) -> Self {
        GraphError::Gpu(e)
    }
}

/// Result alias for the graph layer.
pub type GraphResult<T> = Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = GraphError::from(GpuError::NotCapturing);
        assert!(e.to_string().contains("driver error"));
        assert!(e.source().is_some());
        assert!(GraphError::Cyclic.source().is_none());
        assert!(!GraphError::SelfEdge { index: 3 }.to_string().is_empty());
        assert!(!GraphError::NodeOutOfRange { index: 9, len: 2 }
            .to_string()
            .is_empty());
    }
}
