//! Graph instantiation and replay.
//!
//! [`GraphExec`] is the executable form of a [`CudaGraph`]
//! (`cudaGraphInstantiate` / `cudaGraphLaunch` analogues). Replay is the
//! *self-replaying* behaviour of paper §2.2: the whole DAG of kernels runs
//! from a single CPU launch, reading and writing through the data pointers
//! recorded in the nodes — so the pointers must still reference live buffers
//! holding the intended data, which is exactly what Medusa's restoration
//! has to guarantee.

use crate::error::{GraphError, GraphResult};
use crate::graph::CudaGraph;
use medusa_gpu::{ProcessRuntime, SimDuration, SimTime, StreamId};

/// An instantiated, launchable CUDA graph.
#[derive(Debug, Clone)]
pub struct GraphExec {
    graph: CudaGraph,
    topo: Vec<usize>,
}

impl GraphExec {
    /// Instantiates `graph` on `rt`, validating that every node's kernel
    /// address resolves to a loaded device function, and charging the
    /// (calibrated, substantial) instantiation cost.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Cyclic`] for cyclic dependency edges.
    /// * [`GraphError::Gpu`] with
    ///   [`medusa_gpu::GpuError::InvalidDeviceFunction`] when a node's
    ///   kernel address is stale or its module was never loaded — the
    ///   failure mode a restored graph hits without triggering-kernels.
    pub fn instantiate(rt: &mut ProcessRuntime, graph: CudaGraph) -> GraphResult<Self> {
        let topo = graph.topo_order()?;
        for node in graph.iter() {
            let addr = node.kernel_addr();
            let kref = rt
                .resolve_addr(addr)
                .ok_or(medusa_gpu::GpuError::InvalidDeviceFunction { addr })?;
            if !rt.is_module_loaded(kref) {
                return Err(GraphError::Gpu(
                    medusa_gpu::GpuError::InvalidDeviceFunction { addr },
                ));
            }
        }
        rt.advance(SimDuration::from_nanos(
            rt.cost().graph_instantiate_per_node_ns * graph.node_count() as u64,
        ));
        Ok(GraphExec { graph, topo })
    }

    /// The underlying graph (inspection).
    pub fn graph(&self) -> &CudaGraph {
        &self.graph
    }

    /// Launches the graph on `stream`: one CPU-side launch, then the whole
    /// DAG executes on the GPU with inter-branch concurrency bounded by the
    /// cost model's execution lanes. Returns the graph's GPU makespan.
    ///
    /// The caller observes asynchronous semantics: the CPU clock advances
    /// only by the launch overhead; the stream drains at launch + makespan.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Gpu`] if any node's kernel address no longer
    /// resolves or a node dereferences a dead pointer (illegal memory
    /// access on replay, paper §2.2).
    pub fn launch(&self, rt: &mut ProcessRuntime, stream: StreamId) -> GraphResult<SimDuration> {
        self.launch_traced(rt, stream, None)
    }

    /// [`GraphExec::launch`] with an optional telemetry registry: each
    /// replay increments `graph_replay_launches_total`, adds the graph's
    /// node count to `graph_replay_nodes_total`, and records the GPU
    /// makespan into the `graph_replay_makespan_us` histogram.
    ///
    /// # Errors
    ///
    /// Same as [`GraphExec::launch`].
    pub fn launch_traced(
        &self,
        rt: &mut ProcessRuntime,
        stream: StreamId,
        tele: Option<&medusa_telemetry::Registry>,
    ) -> GraphResult<SimDuration> {
        rt.advance(SimDuration::from_nanos(rt.cost().graph_launch_cpu_ns));
        let base: SimTime = rt.now().max(rt.streams().free_at(stream)?);

        let lanes = rt.cost().graph_exec_lanes.max(1) as usize;
        let mut lane_free = vec![base; lanes];
        let preds = self.graph.predecessors();
        let mut finish = vec![base; self.graph.node_count()];

        for &i in &self.topo {
            let node = self.graph.node(i);
            let exec = rt.execute_kernel_raw(node.kernel_addr(), node.params(), node.work())?;
            let ready = preds[i].iter().map(|&p| finish[p]).max().unwrap_or(base);
            // Earliest-free lane (list scheduling).
            let (li, &lane_at) = lane_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("at least one lane");
            let start = ready.max(lane_at);
            let end = start + exec;
            lane_free[li] = end;
            finish[i] = end;
        }

        let makespan = finish.iter().copied().max().unwrap_or(base) - base;
        rt.streams_mut().set_free_at(stream, base + makespan)?;
        if let Some(t) = tele {
            t.inc("graph_replay_launches_total", 1);
            t.inc("graph_replay_nodes_total", self.graph.node_count() as u64);
            t.observe_us("graph_replay_makespan_us", makespan.as_nanos() / 1_000);
        }
        Ok(makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_graph;
    use medusa_gpu::{
        AllocTag, CostClass, CostModel, DevicePtr, GpuError, GpuSpec, KernelDef, KernelRef,
        KernelSig, LibraryCatalog, LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
    };
    use std::sync::Arc;

    fn catalog() -> Arc<LibraryCatalog> {
        LibraryCatalog::new(vec![LibrarySpec::new(
            "lib.so",
            false,
            vec![ModuleSpec::new(
                "m",
                vec![KernelDef::new(
                    "k",
                    true,
                    KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
                    CostClass::MemoryBound,
                )],
            )],
        )])
    }

    struct Fixture {
        rt: ProcessRuntime,
        addr: u64,
        a: DevicePtr,
        b: DevicePtr,
        c: DevicePtr,
    }

    fn fixture() -> Fixture {
        let mut rt = ProcessRuntime::new(
            catalog(),
            GpuSpec::new("t", 1 << 30),
            CostModel::default(),
            7,
        );
        rt.dlopen("lib.so").unwrap();
        let addr = rt
            .kernel_address(KernelRef {
                lib: 0,
                module: 0,
                kernel: 0,
            })
            .unwrap();
        let a = rt.cuda_malloc(256, AllocTag::Activation).unwrap();
        let b = rt.cuda_malloc(256, AllocTag::Activation).unwrap();
        let c = rt.cuda_malloc(256, AllocTag::Activation).unwrap();
        rt.memory_mut().write_digest(a.addr(), [5; 16]).unwrap();
        // Warm up: loads the module.
        rt.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
            .unwrap();
        Fixture { rt, addr, a, b, c }
    }

    /// Replaying a captured graph must produce the same buffer contents as
    /// running the same kernels eagerly — the paper's validation criterion.
    #[test]
    fn replay_matches_eager_outputs() {
        let Fixture {
            mut rt,
            addr,
            a,
            b,
            c,
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
            p.launch_kernel(addr, &[b.addr(), c.addr()], Work::NONE, 0)?;
            Ok(())
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        exec.launch(&mut rt, 0).unwrap();
        rt.device_synchronize().unwrap();
        let replay_c = rt.memory().read_digest(c.addr()).unwrap();

        // Fresh process, same control flow, eager execution.
        let f2 = fixture();
        let mut rt2 = f2.rt;
        rt2.launch_kernel(f2.addr, &[f2.a.addr(), f2.b.addr()], Work::NONE, 0)
            .unwrap();
        rt2.launch_kernel(f2.addr, &[f2.b.addr(), f2.c.addr()], Work::NONE, 0)
            .unwrap();
        rt2.device_synchronize().unwrap();
        let eager_c = rt2.memory().read_digest(f2.c.addr()).unwrap();
        assert_eq!(replay_c, eager_c);
    }

    #[test]
    fn replay_costs_single_cpu_launch() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let n = 50;
        let g = capture_graph(&mut rt, 0, |p| {
            for _ in 0..n {
                p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
            }
            Ok(())
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let t0 = rt.now();
        exec.launch(&mut rt, 0).unwrap();
        let cpu_cost = rt.now().since(t0);
        assert_eq!(
            cpu_cost.as_nanos(),
            rt.cost().graph_launch_cpu_ns,
            "CPU pays one launch for the whole graph"
        );
        // Eager would pay n per-kernel launches.
        let eager_cpu = rt.cost().eager_launch_cpu_ns * n;
        assert!(eager_cpu > cpu_cost.as_nanos() * 10);
    }

    #[test]
    fn chained_nodes_serialize_on_gpu() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let w = Work::new(0.0, rt.cost().mem_bandwidth); // exactly 1 s each
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], w, 0)?;
            p.launch_kernel(addr, &[b.addr(), a.addr()], w, 0)?;
            Ok(())
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let makespan = exec.launch(&mut rt, 0).unwrap();
        assert!(
            makespan.as_secs_f64() > 1.9,
            "dependent kernels cannot overlap"
        );
    }

    #[test]
    fn independent_branches_overlap_up_to_lane_count() {
        let Fixture {
            mut rt,
            addr,
            a,
            b,
            c,
        } = fixture();
        let w = Work::new(0.0, rt.cost().mem_bandwidth); // 1 s each
                                                         // Two independent chains on different streams.
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], w, 0)?;
            p.launch_kernel(addr, &[a.addr(), c.addr()], w, 1)?;
            Ok(())
        })
        .unwrap();
        assert!(
            g.edges().is_empty(),
            "different streams, no event: independent"
        );
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let makespan = exec.launch(&mut rt, 0).unwrap();
        assert!(
            makespan.as_secs_f64() < 1.5,
            "independent branches should run on parallel lanes, got {makespan}"
        );
    }

    #[test]
    fn instantiate_rejects_stale_kernel_addresses() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let mut g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
        })
        .unwrap();
        // Simulate a blindly-dumped graph from another process: bogus addr.
        g.node_mut(0).set_kernel_addr(addr ^ 0x5550_0000);
        let err = GraphExec::instantiate(&mut rt, g).unwrap_err();
        assert!(matches!(
            err,
            GraphError::Gpu(GpuError::InvalidDeviceFunction { .. })
        ));
    }

    #[test]
    fn replay_with_dangling_pointer_faults() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        // Free a buffer the graph still references (PyTorch prevents this by
        // never freeing capture-time buffers; paper §2.2).
        rt.cuda_free(b).unwrap();
        let err = exec.launch(&mut rt, 0).unwrap_err();
        assert!(matches!(
            err,
            GraphError::Gpu(GpuError::DanglingWrite { .. })
        ));
    }

    #[test]
    fn empty_graph_instantiates_and_launches_trivially() {
        let Fixture { mut rt, .. } = fixture();
        let g = capture_graph(&mut rt, 0, |_| Ok(())).unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let makespan = exec.launch(&mut rt, 0).unwrap();
        assert_eq!(makespan.as_nanos(), 0);
    }

    #[test]
    fn graph_accessor_exposes_nodes_for_inspection() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        assert_eq!(exec.graph().node_count(), 1);
        assert_eq!(exec.graph().node(0).params().value(0), a.addr());
        assert_eq!(exec.graph().stream_of(0), 0);
    }

    #[test]
    fn relaunching_same_exec_is_self_replaying() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        exec.launch(&mut rt, 0).unwrap();
        rt.device_synchronize().unwrap();
        let first = rt.memory().read_digest(b.addr()).unwrap();
        exec.launch(&mut rt, 0).unwrap();
        rt.device_synchronize().unwrap();
        // Same inputs, same kernel: replay is idempotent on contents.
        assert_eq!(rt.memory().read_digest(b.addr()).unwrap(), first);
    }

    #[test]
    fn traced_launch_counts_replays_and_nodes() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            for _ in 0..3 {
                p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
            }
            Ok(())
        })
        .unwrap();
        let exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let tele = medusa_telemetry::Registry::new();
        exec.launch_traced(&mut rt, 0, Some(&tele)).unwrap();
        exec.launch_traced(&mut rt, 0, Some(&tele)).unwrap();
        let snap = tele.snapshot();
        assert_eq!(snap.counter("graph_replay_launches_total"), Some(2));
        assert_eq!(snap.counter("graph_replay_nodes_total"), Some(6));
        assert_eq!(snap.histogram("graph_replay_makespan_us").unwrap().count, 2);
    }

    #[test]
    fn instantiation_cost_scales_with_nodes() {
        let Fixture {
            mut rt, addr, a, b, ..
        } = fixture();
        let g = capture_graph(&mut rt, 0, |p| {
            for _ in 0..10 {
                p.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
            }
            Ok(())
        })
        .unwrap();
        let t0 = rt.now();
        let _exec = GraphExec::instantiate(&mut rt, g).unwrap();
        let d = rt.now().since(t0);
        assert_eq!(d.as_nanos(), rt.cost().graph_instantiate_per_node_ns * 10);
    }
}
