//! # medusa-graph
//!
//! CUDA graph substrate for the Medusa (ASPLOS'25) reproduction: stream
//! capture, graph nodes with raw parameter buffers (paper Figure 4),
//! instantiation and self-replaying launch.
//!
//! CUDA graphs replace per-kernel CPU launches with a single launch of a
//! recorded kernel DAG, which is where the up-to-2.4× inference speedup of
//! paper Figure 3 comes from — and whose capture cost is the cold-start
//! bottleneck Medusa removes by materialization.
//!
//! ## Example: capture and replay
//!
//! ```rust
//! use medusa_graph::{capture_graph, GraphExec};
//! use medusa_gpu::{
//!     AllocTag, CostClass, CostModel, GpuSpec, KernelDef, KernelSig, LibraryCatalog,
//!     LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = LibraryCatalog::new(vec![LibrarySpec::new(
//!     "lib.so",
//!     false,
//!     vec![ModuleSpec::new(
//!         "m",
//!         vec![KernelDef::new(
//!             "k",
//!             true,
//!             KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
//!             CostClass::MemoryBound,
//!         )],
//!     )],
//! )]);
//! let mut rt = ProcessRuntime::new(catalog, GpuSpec::a100_40gb(), CostModel::default(), 1);
//! let lib = rt.dlopen("lib.so")?;
//! let sym = rt.dlsym(lib, "k")?;
//! let addr = rt.cuda_get_func_by_symbol(sym)?;
//! let a = rt.cuda_malloc(256, AllocTag::Activation)?;
//! let b = rt.cuda_malloc(256, AllocTag::Activation)?;
//! rt.memory_mut().write_digest(a.addr(), [1; 16])?;
//!
//! // Warm-up forwarding (mandatory before capture, paper §2.3)...
//! rt.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)?;
//! // ...then capture...
//! let graph = capture_graph(&mut rt, 0, |rt| {
//!     rt.launch_kernel(addr, &[a.addr(), b.addr()], Work::NONE, 0)
//! })?;
//! // ...instantiate and replay with a single CPU launch.
//! let exec = GraphExec::instantiate(&mut rt, graph)?;
//! exec.launch(&mut rt, 0)?;
//! rt.device_synchronize()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod error;
mod exec;
mod graph;
mod node;

pub use capture::capture_graph;
pub use error::{GraphError, GraphResult};
pub use exec::GraphExec;
pub use graph::CudaGraph;
pub use node::GraphNode;
