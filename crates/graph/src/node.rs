//! CUDA graph nodes.
//!
//! A node mirrors what `cudaGraphKernelNodeGetParams` exposes (paper
//! Figure 4): the kernel's device function address and the raw parameter
//! buffer (count + size of each parameter). Medusa's materialization reads
//! nodes through exactly this interface and its restoration writes them back
//! through [`GraphNode::set_kernel_addr`] / [`GraphNode::params_mut`].

use medusa_gpu::{ParamBuffer, Work};
use serde::{Deserialize, Serialize};

/// One kernel node of a CUDA graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    kernel_addr: u64,
    params: ParamBuffer,
    work: Work,
}

impl GraphNode {
    /// Creates a node from its launch record contents.
    pub fn new(kernel_addr: u64, params: ParamBuffer, work: Work) -> Self {
        GraphNode {
            kernel_addr,
            params,
            work,
        }
    }

    /// The device function address recorded in the node.
    pub fn kernel_addr(&self) -> u64 {
        self.kernel_addr
    }

    /// Overwrites the device function address (kernel address restoration,
    /// paper §5).
    pub fn set_kernel_addr(&mut self, addr: u64) {
        self.kernel_addr = addr;
    }

    /// The raw parameter buffer.
    pub fn params(&self) -> &ParamBuffer {
        &self.params
    }

    /// Mutable access to the parameter buffer (data pointer restoration,
    /// paper §4.2).
    pub fn params_mut(&mut self) -> &mut ParamBuffer {
        &mut self.params
    }

    /// The node's work size (grid-dim equivalent; determines replay time).
    pub fn work(&self) -> Work {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_gpu::{KernelSig, ParamKind};

    #[test]
    fn node_accessors_and_patching() {
        let sig = KernelSig::new(vec![ParamKind::PtrIn, ParamKind::Scalar4]);
        let pb = ParamBuffer::encode(&sig, &[0x0007_2000_0000_0100, 7]);
        let mut n = GraphNode::new(0x5f00_0000, pb, Work::new(1.0, 2.0));
        assert_eq!(n.kernel_addr(), 0x5f00_0000);
        assert_eq!(n.params().value(1), 7);
        n.set_kernel_addr(0x5f00_1111);
        n.params_mut().set_value(0, 0x0007_2000_0000_0200);
        assert_eq!(n.kernel_addr(), 0x5f00_1111);
        assert_eq!(n.params().value(0), 0x0007_2000_0000_0200);
        assert_eq!(n.work(), Work::new(1.0, 2.0));
    }
}
