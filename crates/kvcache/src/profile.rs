//! KV cache initialization: profiling forwarding + block pool allocation.
//!
//! The vanilla flow (paper §2.1 stage ❹) runs a *profiling forwarding* at
//! the maximum sequence length and batch size, measures the residual free
//! GPU memory, and sizes the KV cache from it. The invariance Medusa
//! exploits (§6): for a fixed `<GPU type, model type>`, the profiled value
//! is identical on every launch — so it can be materialized offline and the
//! expensive forwarding skipped online.

use crate::block::{BlockAllocator, BlockTable, KvCacheConfig, KvError};
use medusa_gpu::{AllocTag, DevicePtr, GpuResult, ProcessRuntime};
use medusa_model::{input_digest, run_eager_forward, ForwardConfig, KvView, ModelInstance};

/// The allocated KV cache of a serving instance.
#[derive(Debug)]
pub struct KvCache {
    config: KvCacheConfig,
    kcache: DevicePtr,
    vcache: DevicePtr,
    block_table_buf: DevicePtr,
    num_blocks: usize,
    allocator: BlockAllocator,
    table: BlockTable,
}

impl KvCache {
    /// Reassembles a cache around buffers restored by Medusa's allocation
    /// replay (online phase). The caller guarantees the pointers come from
    /// the artifact's labelled KV allocations.
    pub fn from_restored(
        config: KvCacheConfig,
        kcache: DevicePtr,
        vcache: DevicePtr,
        block_table_buf: DevicePtr,
        num_blocks: usize,
    ) -> Self {
        KvCache {
            table: BlockTable::new(config.block_size),
            allocator: BlockAllocator::new(num_blocks),
            config,
            kcache,
            vcache,
            block_table_buf,
            num_blocks,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// Total blocks in the pool.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.allocator.free_count()
    }

    /// Total tokens the cache can hold.
    pub fn capacity_tokens(&self) -> u64 {
        self.num_blocks as u64 * self.config.block_size as u64
    }

    /// The device view the forward pass reads/writes.
    pub fn view(&self) -> KvView {
        KvView {
            kcache: self.kcache,
            vcache: self.vcache,
            block_table: self.block_table_buf,
            block_size: self.config.block_size,
        }
    }

    /// The block allocator and table, for serving-time sequence management.
    pub fn sequences_mut(&mut self) -> (&mut BlockAllocator, &mut BlockTable) {
        (&mut self.allocator, &mut self.table)
    }
}

/// Runs the profiling forwarding and returns the available free GPU memory
/// for the KV cache (the value Medusa materializes, §6).
///
/// # Errors
///
/// Returns driver errors from the forwarding.
pub fn profile_available_memory(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
) -> GpuResult<u64> {
    rt.memory_mut().reset_peak();
    let spec = inst.spec().clone();
    let batch = spec.max_batch();
    let tokens_per_seq = (spec.max_num_batched_tokens() / batch).max(1);
    let cfg = ForwardConfig::prefill(batch, tokens_per_seq);
    run_eager_forward(rt, inst, &cfg, None)?;
    Ok(rt.memory().capacity() - rt.memory().peak())
}

/// Allocates the KV cache from a known free-memory figure (either freshly
/// profiled or restored from a Medusa artifact).
///
/// # Errors
///
/// Returns [`KvError::CacheTooSmall`] if not even one block fits, and
/// driver errors (wrapped by the caller) are avoided by sizing from
/// `free_bytes`.
pub fn allocate_kv_cache(
    rt: &mut ProcessRuntime,
    inst: &ModelInstance,
    free_bytes: u64,
) -> Result<KvCache, KvCacheInitError> {
    let config = KvCacheConfig::for_shard(inst.spec(), inst.tp());
    let num_blocks = config.blocks_for(free_bytes);
    if num_blocks == 0 {
        return Err(KvCacheInitError::Kv(KvError::CacheTooSmall {
            bytes: free_bytes,
            block_bytes: config.block_bytes(),
        }));
    }
    let per_side = num_blocks as u64 * config.block_bytes() / 2;
    let kcache = rt.cuda_malloc(per_side, AllocTag::KvCache)?;
    let vcache = rt.cuda_malloc(per_side, AllocTag::KvCache)?;
    let block_table_buf = rt.cuda_malloc(
        (inst.spec().max_batch() as u64 * 8 * 64).max(256),
        AllocTag::KvCache,
    )?;
    rt.memory_mut()
        .write_digest(kcache.addr(), input_digest("kv_init_k", 0, 0))?;
    rt.memory_mut()
        .write_digest(vcache.addr(), input_digest("kv_init_v", 0, 0))?;
    rt.memory_mut()
        .write_digest(block_table_buf.addr(), input_digest("kv_init_bt", 0, 0))?;
    Ok(KvCache {
        table: BlockTable::new(config.block_size),
        allocator: BlockAllocator::new(num_blocks),
        config,
        kcache,
        vcache,
        block_table_buf,
        num_blocks,
    })
}

/// The vanilla KV cache initialization stage: profile, then allocate.
///
/// # Errors
///
/// Propagates profiling and allocation failures.
pub fn kv_cache_init_stage(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
) -> Result<(KvCache, u64), KvCacheInitError> {
    kv_cache_init_stage_traced(rt, inst, None)
}

/// [`kv_cache_init_stage`] with an optional telemetry registry: counts
/// profiling runs (`kv_profile_runs_total`), records the profiling
/// forwarding's simulated duration (`kv_profile_us`), and tracks the
/// profiled free memory and resulting block-pool size as high-water
/// gauges (`kv_free_bytes`, `kv_blocks`).
///
/// # Errors
///
/// Propagates profiling and allocation failures.
pub fn kv_cache_init_stage_traced(
    rt: &mut ProcessRuntime,
    inst: &mut ModelInstance,
    tele: Option<&medusa_telemetry::Registry>,
) -> Result<(KvCache, u64), KvCacheInitError> {
    let t0 = rt.now();
    let free = profile_available_memory(rt, inst)?;
    if let Some(t) = tele {
        t.inc("kv_profile_runs_total", 1);
        t.observe_us("kv_profile_us", rt.now().since(t0).as_nanos() / 1_000);
        t.gauge_max("kv_free_bytes", free);
    }
    let cache = allocate_kv_cache(rt, inst, free)?;
    if let Some(t) = tele {
        t.gauge_max("kv_blocks", cache.num_blocks() as u64);
    }
    Ok((cache, free))
}

/// Errors of KV cache initialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCacheInitError {
    /// Block arithmetic failed.
    Kv(KvError),
    /// The underlying driver failed.
    Gpu(medusa_gpu::GpuError),
}

impl std::fmt::Display for KvCacheInitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvCacheInitError::Kv(e) => write!(f, "kv cache: {e}"),
            KvCacheInitError::Gpu(e) => write!(f, "driver: {e}"),
        }
    }
}

impl std::error::Error for KvCacheInitError {}

impl From<KvError> for KvCacheInitError {
    fn from(e: KvError) -> Self {
        KvCacheInitError::Kv(e)
    }
}

impl From<medusa_gpu::GpuError> for KvCacheInitError {
    fn from(e: medusa_gpu::GpuError) -> Self {
        KvCacheInitError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medusa_gpu::{CostModel, GpuSpec};
    use medusa_model::{build_catalog, load_weights, ModelSpec};

    fn setup(model: &str, seed: u64) -> (ProcessRuntime, ModelInstance) {
        let spec = ModelSpec::by_name(model).unwrap();
        let mut rt = ProcessRuntime::new(
            build_catalog(&spec),
            GpuSpec::a100_40gb(),
            CostModel::default(),
            seed,
        );
        let mut inst = ModelInstance::initialize(&mut rt, &spec).unwrap();
        load_weights(&mut rt, &inst, 1.0).unwrap();
        inst.ensure_workspace(&mut rt).unwrap();
        (rt, inst)
    }

    #[test]
    fn profiling_is_invariant_across_process_launches() {
        let (mut rt1, mut i1) = setup("Qwen1.5-0.5B", 1);
        let (mut rt2, mut i2) = setup("Qwen1.5-0.5B", 777);
        let f1 = profile_available_memory(&mut rt1, &mut i1).unwrap();
        let f2 = profile_available_memory(&mut rt2, &mut i2).unwrap();
        assert_eq!(
            f1, f2,
            "paper §6: same <GPU, model> must profile identically"
        );
        assert!(f1 > 0);
    }

    #[test]
    fn profiling_duration_matches_figure8_for_qwen4b() {
        let (mut rt, mut inst) = setup("Qwen1.5-4B", 2);
        let t0 = rt.now();
        profile_available_memory(&mut rt, &mut inst).unwrap();
        let secs = rt.now().since(t0).as_secs_f64();
        // Paper Fig. 8a: KV-cache init ≈ 0.50 s, dominated by the profiling
        // forwarding.
        assert!(
            (0.30..0.65).contains(&secs),
            "profiling took {secs}s, out of band"
        );
    }

    #[test]
    fn cache_allocation_sizes_from_free_memory() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 3);
        let free = profile_available_memory(&mut rt, &mut inst).unwrap();
        let cache = allocate_kv_cache(&mut rt, &inst, free).unwrap();
        assert!(
            cache.num_blocks() > 1000,
            "a 40GB GPU should hold many 0.5B-model blocks"
        );
        assert_eq!(cache.free_blocks(), cache.num_blocks());
        assert!(cache.capacity_tokens() > 100_000);
        let view = cache.view();
        assert!(rt.memory().containing(view.kcache.addr()).is_some());
    }

    #[test]
    fn cache_too_small_is_reported() {
        let (mut rt, inst) = setup("Qwen1.5-0.5B", 4);
        let err = allocate_kv_cache(&mut rt, &inst, 100).unwrap_err();
        assert!(matches!(
            err,
            KvCacheInitError::Kv(KvError::CacheTooSmall { .. })
        ));
    }

    #[test]
    fn from_restored_reassembles_equivalent_cache() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 8);
        let (orig, free) = kv_cache_init_stage(&mut rt, &mut inst).unwrap();
        let v = orig.view();
        let rebuilt = KvCache::from_restored(
            *orig.config(),
            v.kcache,
            v.vcache,
            v.block_table,
            orig.num_blocks(),
        );
        assert_eq!(rebuilt.num_blocks(), orig.num_blocks());
        assert_eq!(rebuilt.capacity_tokens(), orig.capacity_tokens());
        assert_eq!(rebuilt.view().kcache, v.kcache);
        assert!(free > 0);
    }

    #[test]
    fn sharded_config_divides_kv_bytes() {
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        let full = crate::KvCacheConfig::for_model(&spec);
        let half = crate::KvCacheConfig::for_shard(&spec, 2);
        assert_eq!(half.bytes_per_token, full.bytes_per_token.div_ceil(2));
        // Same free memory holds ~2x the blocks per shard.
        let f = full.blocks_for(8 << 30);
        let h = half.blocks_for(8 << 30);
        assert!(h >= f * 2 - 1);
    }

    #[test]
    fn sequences_admit_and_decode_through_the_cache() {
        let (mut rt, mut inst) = setup("Qwen1.5-0.5B", 5);
        let (cache, _) = kv_cache_init_stage(&mut rt, &mut inst).unwrap();
        let mut cache = cache;
        let total = cache.num_blocks();
        let (alloc, table) = cache.sequences_mut();
        table.admit(alloc, 7, 161).unwrap();
        table.extend(alloc, 7, 161, 338).unwrap();
        assert!(alloc.free_count() < total);
        table.finish(alloc, 7).unwrap();
        assert_eq!(alloc.free_count(), total);
    }
}
