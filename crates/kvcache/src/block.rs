//! PagedAttention-style KV cache block management (paper §2.1 stage ❹).
//!
//! The KV cache is one continuous device buffer ("a continuous chunk of GPU
//! buffer", paper §6) managed at block granularity: each block holds
//! [`KvCacheConfig::block_size`] tokens of keys and values for every layer.
//! Sequences own block lists through a [`BlockTable`].

use medusa_model::ModelSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors of the KV cache layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// No free blocks remain.
    OutOfBlocks {
        /// Blocks requested beyond capacity.
        needed: usize,
    },
    /// Operation on an unknown sequence id.
    UnknownSequence {
        /// The sequence id.
        seq: u64,
    },
    /// The cache buffer cannot hold even one block.
    CacheTooSmall {
        /// Bytes offered for the cache.
        bytes: u64,
        /// Bytes needed per block.
        block_bytes: u64,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::OutOfBlocks { needed } => {
                write!(f, "KV cache exhausted: {needed} more blocks needed")
            }
            KvError::UnknownSequence { seq } => write!(f, "unknown sequence id {seq}"),
            KvError::CacheTooSmall { bytes, block_bytes } => {
                write!(
                    f,
                    "cache of {bytes} bytes cannot hold one {block_bytes}-byte block"
                )
            }
        }
    }
}

impl std::error::Error for KvError {}

/// KV cache geometry for one model on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvCacheConfig {
    /// Tokens per block (vLLM default 16).
    pub block_size: u32,
    /// Bytes of K+V for a single token across all layers.
    pub bytes_per_token: u64,
    /// Fraction of profiled-free memory handed to the cache (vLLM's
    /// `gpu_memory_utilization` headroom is folded in upstream).
    pub utilization: f64,
}

impl KvCacheConfig {
    /// The vLLM-default configuration for `spec`.
    pub fn for_model(spec: &ModelSpec) -> Self {
        Self::for_shard(spec, 1)
    }

    /// Configuration for one rank of a `tp`-way tensor-parallel instance:
    /// KV heads are divided across ranks, so each rank caches `1/tp` of the
    /// per-token bytes (paper §8 multi-GPU support).
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn for_shard(spec: &ModelSpec, tp: u32) -> Self {
        assert!(tp > 0, "tensor-parallel degree must be positive");
        KvCacheConfig {
            block_size: 16,
            bytes_per_token: spec.kv_bytes_per_token().div_ceil(tp as u64),
            utilization: 0.92,
        }
    }

    /// Bytes of one block.
    pub fn block_bytes(&self) -> u64 {
        self.bytes_per_token * self.block_size as u64
    }

    /// Number of whole blocks fitting in `free_bytes` after utilization
    /// headroom.
    pub fn blocks_for(&self, free_bytes: u64) -> usize {
        ((free_bytes as f64 * self.utilization) as u64 / self.block_bytes()) as usize
    }
}

/// Allocator over the block pool.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    total: usize,
    free: Vec<u32>,
}

impl BlockAllocator {
    /// Creates an allocator over `total` blocks.
    pub fn new(total: usize) -> Self {
        BlockAllocator {
            total,
            free: (0..total as u32).rev().collect(),
        }
    }

    /// Total blocks in the pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Blocks currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates `n` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfBlocks`] if fewer than `n` are free, in which
    /// case nothing is allocated.
    pub fn alloc(&mut self, n: usize) -> Result<Vec<u32>, KvError> {
        if self.free.len() < n {
            return Err(KvError::OutOfBlocks {
                needed: n - self.free.len(),
            });
        }
        Ok(self.free.split_off(self.free.len() - n))
    }

    /// Returns blocks to the pool.
    pub fn release(&mut self, blocks: impl IntoIterator<Item = u32>) {
        self.free.extend(blocks);
        debug_assert!(self.free.len() <= self.total);
    }
}

/// Per-sequence block ownership.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    seqs: HashMap<u64, Vec<u32>>,
    block_size: u32,
}

impl BlockTable {
    /// Creates an empty table for `block_size`-token blocks.
    pub fn new(block_size: u32) -> Self {
        BlockTable {
            seqs: HashMap::new(),
            block_size,
        }
    }

    /// Number of tracked sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether no sequences are tracked.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_needed(&self, tokens: u64) -> usize {
        tokens.div_ceil(self.block_size as u64) as usize
    }

    /// Admits a sequence with `tokens` context, allocating its blocks.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfBlocks`] if the pool cannot cover it.
    pub fn admit(
        &mut self,
        alloc: &mut BlockAllocator,
        seq: u64,
        tokens: u64,
    ) -> Result<(), KvError> {
        let blocks = alloc.alloc(self.blocks_needed(tokens))?;
        self.seqs.insert(seq, blocks);
        Ok(())
    }

    /// Extends a sequence by `new_tokens` (decode growth), allocating blocks
    /// when a block boundary is crossed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] or [`KvError::OutOfBlocks`].
    pub fn extend(
        &mut self,
        alloc: &mut BlockAllocator,
        seq: u64,
        old_tokens: u64,
        new_tokens: u64,
    ) -> Result<(), KvError> {
        let owned = self
            .seqs
            .get(&seq)
            .ok_or(KvError::UnknownSequence { seq })?
            .len();
        let needed = self.blocks_needed(old_tokens + new_tokens);
        if needed > owned {
            let extra = alloc.alloc(needed - owned)?;
            self.seqs
                .get_mut(&seq)
                .expect("checked above")
                .extend(extra);
        }
        Ok(())
    }

    /// Releases a finished sequence's blocks back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] for unknown ids.
    pub fn finish(&mut self, alloc: &mut BlockAllocator, seq: u64) -> Result<(), KvError> {
        let blocks = self
            .seqs
            .remove(&seq)
            .ok_or(KvError::UnknownSequence { seq })?;
        alloc.release(blocks);
        Ok(())
    }

    /// The blocks owned by `seq`, if tracked.
    pub fn blocks_of(&self, seq: u64) -> Option<&[u32]> {
        self.seqs.get(&seq).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let spec = ModelSpec::by_name("Llama2-7B").unwrap();
        let cfg = KvCacheConfig::for_model(&spec);
        assert_eq!(cfg.block_size, 16);
        assert_eq!(cfg.bytes_per_token, 2 * 32 * 32 * 128 * 2);
        assert_eq!(cfg.block_bytes(), cfg.bytes_per_token * 16);
        let blocks = cfg.blocks_for(10 << 30);
        assert!(blocks > 0);
        assert!(blocks as u64 * cfg.block_bytes() <= 10 << 30);
    }

    #[test]
    fn allocator_alloc_release_roundtrip() {
        let mut a = BlockAllocator::new(10);
        let got = a.alloc(4).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(a.free_count(), 6);
        let err = a.alloc(7).unwrap_err();
        assert_eq!(err, KvError::OutOfBlocks { needed: 1 });
        assert_eq!(a.free_count(), 6, "failed alloc must not consume blocks");
        a.release(got);
        assert_eq!(a.free_count(), 10);
    }

    #[test]
    fn table_admit_extend_finish() {
        let mut a = BlockAllocator::new(8);
        let mut t = BlockTable::new(16);
        t.admit(&mut a, 1, 40).unwrap(); // 3 blocks
        assert_eq!(t.blocks_of(1).unwrap().len(), 3);
        assert_eq!(a.free_count(), 5);
        // 40 + 8 = 48 tokens → still 3 blocks.
        t.extend(&mut a, 1, 40, 8).unwrap();
        assert_eq!(t.blocks_of(1).unwrap().len(), 3);
        // 48 + 1 = 49 → 4 blocks.
        t.extend(&mut a, 1, 48, 1).unwrap();
        assert_eq!(t.blocks_of(1).unwrap().len(), 4);
        t.finish(&mut a, 1).unwrap();
        assert_eq!(a.free_count(), 8);
        assert!(t.is_empty());
        assert_eq!(
            t.finish(&mut a, 1),
            Err(KvError::UnknownSequence { seq: 1 })
        );
    }

    #[test]
    fn blocks_needed_rounds_up() {
        let t = BlockTable::new(16);
        assert_eq!(t.blocks_needed(1), 1);
        assert_eq!(t.blocks_needed(16), 1);
        assert_eq!(t.blocks_needed(17), 2);
        assert_eq!(t.blocks_needed(0), 0);
    }

    #[test]
    fn errors_display() {
        assert!(!KvError::OutOfBlocks { needed: 1 }.to_string().is_empty());
        assert!(!KvError::UnknownSequence { seq: 2 }.to_string().is_empty());
        assert!(!KvError::CacheTooSmall {
            bytes: 1,
            block_bytes: 2
        }
        .to_string()
        .is_empty());
    }
}
