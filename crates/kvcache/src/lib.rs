//! # medusa-kvcache
//!
//! PagedAttention-style KV cache substrate for the Medusa (ASPLOS'25)
//! reproduction: block pool management, per-sequence block tables, and the
//! KV cache initialization stage — profiling forwarding plus allocation —
//! whose runtime cost Medusa eliminates by materializing the profiled
//! available-memory value (paper §6).
//!
//! ## Example
//!
//! ```rust
//! use medusa_gpu::{CostModel, GpuSpec, ProcessRuntime};
//! use medusa_kvcache::kv_cache_init_stage;
//! use medusa_model::{build_catalog, load_weights, ModelInstance, ModelSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
//! let mut rt = ProcessRuntime::new(
//!     build_catalog(&spec),
//!     GpuSpec::a100_40gb(),
//!     CostModel::default(),
//!     1,
//! );
//! let mut inst = ModelInstance::initialize(&mut rt, &spec)?;
//! load_weights(&mut rt, &inst, 1.0)?;
//! inst.ensure_workspace(&mut rt)?;
//! let (cache, profiled_free) = kv_cache_init_stage(&mut rt, &mut inst)?;
//! println!("{} blocks from {} free bytes", cache.num_blocks(), profiled_free);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod profile;

pub use block::{BlockAllocator, BlockTable, KvCacheConfig, KvError};
pub use profile::{
    allocate_kv_cache, kv_cache_init_stage, kv_cache_init_stage_traced, profile_available_memory,
    KvCache, KvCacheInitError,
};
