//! # medusa-repro
//!
//! Umbrella crate of the reproduction of **Medusa: Accelerating Serverless
//! LLM Inference with Materialization** (ASPLOS'25). Re-exports every layer
//! of the stack so the examples and integration tests have one import root:
//!
//! * [`gpu`] — simulated GPU / CUDA driver substrate,
//! * [`graph`] — CUDA graph capture and replay,
//! * [`model`] — the ten Table-1 models, kernel schedules, forwarding,
//! * [`kvcache`] — PagedAttention-style KV cache and profiling,
//! * [`core`] — Medusa itself: materialization, restoration, pipelines,
//! * [`workload`] — ShareGPT-like traces,
//! * [`serving`] — the discrete-event serving cluster simulator.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use medusa as core;
pub use medusa_gpu as gpu;
pub use medusa_graph as graph;
pub use medusa_kvcache as kvcache;
pub use medusa_model as model;
pub use medusa_serving as serving;
pub use medusa_workload as workload;
