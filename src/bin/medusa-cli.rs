//! `medusa-cli` — operate the Medusa reproduction from the command line.
//!
//! ```text
//! medusa-cli models
//! medusa-cli materialize --model <name> [--out artifact.json] [--seed N]
//! medusa-cli coldstart   --model <name> --strategy <vllm|async|medusa|nograph>
//!                        [--artifact artifact.json] [--validate] [--warm]
//!                        [--triggering <first-layer|handwritten>] [--seed N]
//! medusa-cli inspect     --artifact artifact.json
//! medusa-cli validate    --artifact <FILE.json|FILE.maf2> [--model <name>]
//! medusa-cli convert     --in <FILE> --out <FILE> [--rank N]
//! medusa-cli registry    pack --artifacts a.maf2,b.maf2[,...] [--template FAMILY]
//!                        [--variants N] [--out store.mcs]
//! medusa-cli registry    inspect --store store.mcs
//! medusa-cli registry    dedup-stats --store store.mcs
//! medusa-cli trace       [--model <name>] [--strategy <vllm|async|medusa|nograph>]
//!                        [--format <chrome|prom>] [--seed N] [--out FILE]
//!                        [--faults <spec>] [--fault-seed N]
//! medusa-cli cluster     [--nodes N] [--seed N] [--model <name>]
//!                        [--scheduler <round-robin|least-loaded|coldstart-aware|
//!                                      locality|pipeline>]  (--policy is an alias)
//!                        [--prewarm <histogram|windowed-rate>] [--prewarm-lead F]
//!                        [--prewarm-percentile PM] [--pipeline-k N]
//!                        [--arrivals-out FILE]
//!                        [--strategy <vllm|async|medusa|nograph>] [--tp N]
//!                        [--rps F] [--duration F]
//!                        [--pattern <poisson|bursty|mmpp|diurnal>]
//!                        [--workload <sharegpt|interactive>]
//!                        [--models N] [--zipf S] [--trace-file FILE]
//!                        [--cache-cap N | --cache-cap-bytes N]
//!                        [--eviction <lru|lfu|cost-aware>]
//!                        [--cached K] [--keep-alive F] [--queue-depth N]
//!                        [--eval-interval F]
//!                        [--registry <whole|cas>] [--registry-store FILE] [--template]
//!                        [--faults <flaky-registry,node-crash>] [--fault-seed N]
//!                        [--format <chrome|prom>] [--out FILE] [--telemetry FILE]
//! ```
//!
//! `cluster` scales to large fleets: `--nodes 1000 --rps 10000 --workload
//! interactive --cached 1000` replays a million requests through the
//! event core in wall-clock seconds, and fleets beyond 16 nodes print an
//! aggregate node summary plus the busiest workers instead of the full
//! per-node table (`--all-nodes` forces the table). Multi-tenant fleets
//! come from `--models N --zipf S` (Zipf-skewed synthetic traffic over N
//! models) or `--trace-file` (an Azure-Functions-style per-model
//! invocation CSV, see `medusa_workload::InvocationTrace`); bound each
//! node's artifact cache with `--cache-cap`/`--cache-cap-bytes` and pick
//! the victim order with `--eviction`. Multi-tenant reports append a
//! per-tenant TTFT/SLO table and fleet-wide cache counters.
//!
//! Predictive scheduling is opt-in: `--scheduler locality` routes by
//! estimated start cost (warm queue drain vs cache-hit restore vs
//! registry fetch), `--prewarm histogram|windowed-rate` arms the
//! arrival-history estimator that starts nodes ahead of forecast bursts
//! (`--prewarm-lead` tunes how early; `--prewarm-percentile` picks the
//! histogram percentile, per-mille — high values target the inter-burst
//! gap), and `--scheduler pipeline`
//! (optionally `--pipeline-k N`) shards each cold start across up to `k`
//! nodes pipeline-parallel. `--arrivals-out` exports the trace's
//! per-model arrival history as CSV for offline estimator studies.
//!
//! `registry pack` chunks MAF2 artifacts content-defined (Gear CDC with
//! boundaries forced at section seams), deduplicates the chunks across
//! every packed artifact, and — with `--template FAMILY` — factors the
//! chunks shared by every member into a family template manifest.
//! `--variants N` additionally derives N deterministic fine-tune
//! siblings from each input capture (same family skeleton, per-variant
//! weight deltas) and packs them too — the regime where chunk dedup
//! actually pays, since independent captures share almost nothing. The
//! resulting `.mcs` store file feeds `cluster --registry cas
//! --registry-store FILE`, which replays the fleet with chunk-level
//! residency: cache-miss fetches move only the chunks the node lacks, and
//! the report grows registry byte/chunk-hit counters. Without a store,
//! `--registry cas` synthesizes a per-model pseudo-chunk catalog
//! (`--template` adds a family-shared block every model references), so
//! multi-tenant dedup effects are observable on purely synthetic runs.
//!
//! Artifacts travel in two encodings: the MAF2 binary container (magic
//! `MAF2\r\n\x1a\n`, validated in O(header), see DESIGN.md §13) and the
//! JSON debug encoding. Every subcommand that reads an `--artifact` file
//! auto-detects the format by magic bytes; `materialize --out FILE.maf2`
//! writes the binary container directly, and `convert` translates between
//! the two (`--rank N` picks one shard out of a multi-shard bundle when
//! lowering to JSON).
//!
//! Every number the CLI prints derives from the simulated clock, so any
//! subcommand re-run with the same flags produces byte-identical output —
//! including the `cluster` report, its telemetry exports, and any
//! fault-injected (`--faults`) run.

use medusa::{
    is_maf2, materialize_offline, ArtifactTemplate, ArtifactValidator, ChunkStore, ColdStart,
    ColdStartOptions, FaultPlan, Maf2Reader, MaterializedState, Parallelism, Stage, Strategy,
    TriggeringMode,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet_traced, CacheCapacity, CacheConfig, ClusterFaults, ClusterSpec, EvictionPolicy,
    FetchUnit, FleetProfile, ModelManifest, Policy, PrewarmConfig, PrewarmPolicy, RegistryCatalog,
    RegistryMode,
};
use medusa_workload::{
    ArrivalHistory, ArrivalPattern, InvocationTrace, LengthSampler, ModelMix, TraceConfig,
};
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let result = if cmd == "registry" {
        // `registry` takes a verb before the flags.
        registry(&args[1..])
    } else {
        let flags = parse_flags(&args[1..]);
        match cmd.as_str() {
            "models" => models(),
            "materialize" => materialize(&flags),
            "coldstart" => coldstart(&flags),
            "inspect" => inspect(&flags),
            "validate" => validate(&flags),
            "convert" => convert(&flags),
            "trace" => trace(&flags),
            "cluster" => cluster(&flags),
            other => {
                eprintln!("unknown command `{other}`");
                usage();
                exit(2);
            }
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "usage: medusa-cli <models|materialize|coldstart|inspect|validate|convert|registry|trace|cluster> [flags]"
    );
    eprintln!("  materialize --model <name> [--out FILE[.maf2]] [--seed N]");
    eprintln!("  coldstart   --model <name> --strategy <vllm|async|medusa|nograph>");
    eprintln!("              [--artifact FILE] [--validate] [--warm]");
    eprintln!("              [--triggering <first-layer|handwritten>] [--seed N]");
    eprintln!("  inspect     --artifact FILE");
    eprintln!("  validate    --artifact FILE [--model <name>]  (JSON or MAF2, auto-detected)");
    eprintln!("  convert     --in FILE --out FILE [--rank N]   (JSON <-> MAF2 by magic bytes)");
    eprintln!("  registry    pack --artifacts a.maf2,b.maf2[,...] [--template FAMILY]");
    eprintln!("              [--variants N] [--out store.mcs]");
    eprintln!("  registry    inspect --store store.mcs");
    eprintln!("  registry    dedup-stats --store store.mcs");
    eprintln!("  trace       [--model <name>] [--strategy <vllm|async|medusa|nograph>]");
    eprintln!("              [--format <chrome|prom>] [--artifact FILE] [--seed N] [--out FILE]");
    eprintln!("              [--faults corrupt,version-skew,missing-library,...|all]");
    eprintln!("              [--fault-seed N]");
    eprintln!("  cluster     [--nodes N] [--seed N] [--model <name>] [--tp N]");
    eprintln!(
        "              [--scheduler <round-robin|least-loaded|coldstart-aware|locality|pipeline>]"
    );
    eprintln!("              (--policy is an alias for --scheduler)");
    eprintln!("              [--prewarm <histogram|windowed-rate>] [--prewarm-lead F]");
    eprintln!("              [--prewarm-percentile PM] [--pipeline-k N]");
    eprintln!("              [--arrivals-out FILE]");
    eprintln!("              [--strategy <vllm|async|medusa|nograph>]");
    eprintln!("              [--rps F] [--duration F] [--pattern <poisson|bursty|mmpp|diurnal>]");
    eprintln!("              [--workload <sharegpt|interactive>] [--all-nodes]");
    eprintln!("              [--models N] [--zipf S] [--trace-file FILE]");
    eprintln!(
        "              [--cache-cap N | --cache-cap-bytes N] [--eviction <lru|lfu|cost-aware>]"
    );
    eprintln!("              [--cached K] [--keep-alive F] [--queue-depth N]");
    eprintln!("              [--eval-interval F]");
    eprintln!("              [--registry <whole|cas>] [--registry-store FILE] [--template]");
    eprintln!("              [--faults <flaky-registry,node-crash>] [--fault-seed N]");
    eprintln!("              [--format <chrome|prom>] [--out FILE] [--telemetry FILE]");
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument `{a}`");
            exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        out.insert(key.to_string(), value);
    }
    out
}

fn require_model(flags: &HashMap<String, String>) -> Result<ModelSpec, String> {
    let name = flags.get("model").ok_or("--model is required")?;
    ModelSpec::by_name(name)
        .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))
}

fn seed(flags: &HashMap<String, String>) -> u64 {
    flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1)
}

fn models() -> Result<(), String> {
    println!(
        "{:<14} {:>7} {:>8} {:>7} {:>9} {:>10} {:>13}",
        "model", "layers", "hidden", "heads", "vocab", "params", "table1 nodes"
    );
    for m in ModelSpec::catalog() {
        println!(
            "{:<14} {:>7} {:>8} {:>7} {:>9} {:>8.1}GB {:>13}",
            m.name(),
            m.layers(),
            m.hidden(),
            m.heads(),
            m.vocab(),
            m.param_bytes() as f64 / (1u64 << 30) as f64,
            m.table1_nodes()
        );
    }
    Ok(())
}

fn materialize(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = require_model(flags)?;
    let (artifact, report) = materialize_offline(
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        seed(flags),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "offline phase: capturing {:.1}s + analysis {:.1}s = {:.1}s (simulated)",
        report.capture.as_secs_f64(),
        report.analysis.as_secs_f64(),
        report.total().as_secs_f64()
    );
    println!(
        "materialized {} graphs / {} nodes / {} replay ops",
        artifact.graphs.len(),
        artifact.total_nodes(),
        artifact.replay_ops.len()
    );
    if let Some(path) = flags.get("out") {
        let (encoded, label) = if path.ends_with(".maf2") {
            (artifact.to_maf2().map_err(|e| e.to_string())?, "MAF2")
        } else {
            (
                artifact.to_json().map_err(|e| e.to_string())?.into_bytes(),
                "JSON",
            )
        };
        std::fs::write(path, &encoded).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({:.1} KiB {label})",
            path,
            encoded.len() as f64 / 1024.0
        );
    }
    Ok(())
}

/// Reads an artifact file in either encoding, auto-detected by magic
/// bytes: MAF2 containers decode through the zero-copy reader (the file
/// must hold exactly one shard — use `convert --rank` to extract one from
/// a bundle), anything else parses as the JSON debug encoding.
fn read_artifact_file(path: &str) -> Result<MaterializedState, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if is_maf2(&bytes) {
        MaterializedState::from_maf2(&bytes).map_err(|e| e.to_string())
    } else {
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| format!("`{path}` is neither MAF2 (no magic) nor UTF-8 JSON"))?;
        MaterializedState::from_json(json).map_err(|e| e.to_string())
    }
}

fn load_artifact(flags: &HashMap<String, String>) -> Result<Option<MaterializedState>, String> {
    match flags.get("artifact") {
        None => Ok(None),
        Some(path) => read_artifact_file(path).map(Some),
    }
}

/// Parses `--faults <spec>` (+ `--fault-seed N`) into a per-instance
/// [`FaultPlan`]; absent flag means no injection.
fn fault_plan(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    let Some(spec) = flags.get("faults") else {
        return Ok(None);
    };
    let fault_seed = flags
        .get("fault-seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    FaultPlan::parse(spec, fault_seed).map(Some).map_err(|t| {
        format!("unknown fault `{t}` (corrupt|version-skew|missing-library|truncated-weights|abort|all)")
    })
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<Strategy, String> {
    match flags.get("strategy").map(String::as_str) {
        Some("vllm") | None => Ok(Strategy::Vanilla),
        Some("async") => Ok(Strategy::VanillaAsync),
        Some("medusa") => Ok(Strategy::Medusa),
        Some("nograph") => Ok(Strategy::NoCudaGraph),
        Some(other) => Err(format!("unknown strategy `{other}`")),
    }
}

fn coldstart(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = require_model(flags)?;
    let strategy = parse_strategy(flags)?;
    let triggering = match flags.get("triggering").map(String::as_str) {
        Some("handwritten") => TriggeringMode::Handwritten,
        Some("first-layer") | None => TriggeringMode::FirstLayer,
        Some(other) => return Err(format!("unknown triggering mode `{other}`")),
    };
    let artifact = load_artifact(flags)?;
    let opts = ColdStartOptions {
        seed: seed(flags),
        warm_container: flags.contains_key("warm"),
        validate: flags.contains_key("validate"),
        triggering,
        ..Default::default()
    };
    let mut builder = ColdStart::new(&spec).strategy(strategy).options(opts);
    if let Some(a) = &artifact {
        builder = builder.artifact(a);
    }
    if let Some(plan) = fault_plan(flags)? {
        builder = builder.faults(plan);
    }
    let outcome = builder.run().map_err(|e| e.to_string())?;
    if let Some(fb) = outcome.fallback() {
        println!(
            "degraded {} -> vanilla ({}): {}",
            fb.from, fb.reason, fb.detail
        );
    }
    let report = outcome.report();
    println!(
        "{} cold start of {} (simulated):",
        report.strategy, report.model
    );
    for span in &report.spans {
        println!(
            "  {:<16} [{:>8.3} .. {:>8.3}]  {:>8.3}s",
            span.stage.to_string(),
            span.start.as_secs_f64(),
            span.end.as_secs_f64(),
            span.duration().as_secs_f64()
        );
    }
    println!(
        "loading {:.3}s, total {:.3}s",
        report.loading.as_secs_f64(),
        report.total.as_secs_f64()
    );
    let _ = Stage::Capture;
    Ok(())
}

fn trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags
        .get("model")
        .map(String::as_str)
        .unwrap_or("Qwen1.5-0.5B");
    let spec = ModelSpec::by_name(name)
        .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))?;
    let strategy = parse_strategy(flags)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("chrome");
    let mut artifact = load_artifact(flags)?;
    if strategy == Strategy::Medusa && artifact.is_none() {
        // Medusa needs a materialized artifact; build one inline so the
        // command works standalone on any catalog model.
        let (art, _) = materialize_offline(
            &spec,
            GpuSpec::a100_40gb(),
            CostModel::default(),
            seed(flags),
        )
        .map_err(|e| e.to_string())?;
        artifact = Some(art);
    }
    let opts = ColdStartOptions {
        seed: seed(flags),
        ..Default::default()
    };
    let tele = medusa_telemetry::Registry::new();
    let mut builder = ColdStart::new(&spec)
        .strategy(strategy)
        .options(opts)
        .telemetry(&tele);
    if let Some(a) = &artifact {
        builder = builder.artifact(a);
    }
    if let Some(plan) = fault_plan(flags)? {
        builder = builder.faults(plan);
    }
    let outcome = builder.run().map_err(|e| e.to_string())?;
    if let Some(fb) = outcome.fallback() {
        eprintln!(
            "degraded {} -> vanilla ({}): {}",
            fb.from, fb.reason, fb.detail
        );
    }
    let report = outcome.report().clone();
    let snap = tele.snapshot();
    let rendered = match format {
        "chrome" => medusa_telemetry::export::chrome::render(&snap),
        "prom" => medusa_telemetry::export::prometheus::render(&snap),
        other => return Err(format!("unknown format `{other}` (chrome|prom)")),
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {path}: {} spans from a {} cold start of {} ({:.3}s simulated)",
                snap.spans.len(),
                report.strategy,
                report.model,
                report.total.as_secs_f64()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cluster(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags
        .get("model")
        .map(String::as_str)
        .unwrap_or("Qwen1.5-0.5B");
    let spec = ModelSpec::by_name(name)
        .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))?;
    let strategy = match flags.get("strategy").map(String::as_str) {
        None => Strategy::Medusa,
        Some(_) => parse_strategy(flags)?,
    };
    // `--scheduler` is the documented spelling; `--policy` stays as the
    // historical alias.
    let policy = match flags
        .get("scheduler")
        .or_else(|| flags.get("policy"))
        .map(String::as_str)
    {
        None => Policy::ColdStartAware,
        Some(s) => Policy::parse(s).ok_or_else(|| {
            format!(
                "unknown scheduler `{s}` \
                 (round-robin|least-loaded|coldstart-aware|locality|pipeline)"
            )
        })?,
    };
    let prewarm = match flags.get("prewarm").map(String::as_str) {
        None => None,
        Some(s) => {
            let mut cfg = PrewarmConfig {
                policy: PrewarmPolicy::parse(s).ok_or_else(|| {
                    format!("unknown prewarm policy `{s}` (histogram|windowed-rate)")
                })?,
                ..Default::default()
            };
            if let Some(lead) = flags.get("prewarm-lead") {
                cfg.lead_s = lead
                    .parse()
                    .map_err(|_| format!("--prewarm-lead wants a number, got `{lead}`"))?;
            }
            if let Some(pm) = flags.get("prewarm-percentile") {
                let percentile_pm = pm.parse().map_err(|_| {
                    format!("--prewarm-percentile wants per-mille (0..=1000), got `{pm}`")
                })?;
                match cfg.policy {
                    PrewarmPolicy::Histogram { .. } => {
                        cfg.policy = PrewarmPolicy::Histogram { percentile_pm };
                    }
                    PrewarmPolicy::WindowedRate { .. } => {
                        return Err(
                            "--prewarm-percentile only applies to --prewarm histogram".to_string()
                        );
                    }
                }
            }
            Some(cfg)
        }
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} wants a number, got `{v}`")),
        }
    };
    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} wants an integer, got `{v}`")),
        }
    };
    let nodes = get_usize("nodes", 4)?;
    let tp = get_usize("tp", 1)? as u32;
    let cached = get_usize("cached", 0)?;
    let rps = get_f64("rps", 8.0)?;
    let duration = get_f64("duration", 60.0)?;
    let keep_alive = get_f64("keep-alive", 60.0)?;
    let queue_depth = get_usize("queue-depth", 4)?;
    let pattern = match flags.get("pattern").map(String::as_str) {
        Some("poisson") => ArrivalPattern::Poisson,
        Some("bursty") | None => ArrivalPattern::sharegpt_bursty(),
        Some("mmpp") => ArrivalPattern::serverless_mmpp(),
        Some("diurnal") => ArrivalPattern::compressed_diurnal(),
        Some(other) => {
            return Err(format!(
                "unknown pattern `{other}` (poisson|bursty|mmpp|diurnal)"
            ))
        }
    };
    let parallelism = match flags.get("parallelism").map(String::as_str) {
        Some("serial") => Parallelism::Serial,
        Some("overlapped") | None => Parallelism::Overlapped,
        Some("pipelined-tp") => Parallelism::PipelinedTp,
        Some(other) => return Err(format!("unknown parallelism `{other}`")),
    };

    let models = get_usize("models", 1)? as u32;
    let zipf_s = get_f64("zipf", 1.0)?;
    let cache_cap = get_usize("cache-cap", 0)? as u32;
    let cache_bytes = get_usize("cache-cap-bytes", 0)? as u64;
    let eviction = match flags.get("eviction") {
        None => EvictionPolicy::Lru,
        Some(s) => EvictionPolicy::parse(s)
            .ok_or_else(|| format!("unknown eviction policy `{s}` (lru|lfu|cost-aware)"))?,
    };
    let cache_capacity = match (cache_cap, cache_bytes) {
        (0, 0) => CacheCapacity::Unlimited,
        (n, 0) => CacheCapacity::Artifacts(n),
        (0, b) => CacheCapacity::Bytes(b),
        _ => return Err("pass only one of --cache-cap / --cache-cap-bytes".into()),
    };

    // The request stream comes first: an imported invocation table fixes
    // the tenant count, which in turn scales the fleet cost profile.
    let (trace, models) = match flags.get("trace-file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --trace-file `{path}`: {e}"))?;
            let inv = InvocationTrace::parse_csv(&text)
                .map_err(|e| format!("bad --trace-file `{path}`: {e}"))?;
            let trace = inv.generate(
                seed(flags),
                &LengthSampler::sharegpt_prompt(),
                &LengthSampler::sharegpt_output(),
            );
            let models = trace.iter().map(|r| r.model + 1).max().unwrap_or(1);
            (trace, models)
        }
        None => {
            let trace_cfg = match flags.get("workload").map(String::as_str) {
                Some("interactive") => TraceConfig::interactive(rps, duration),
                Some("sharegpt") | None => TraceConfig::sharegpt(rps, duration),
                Some(other) => {
                    return Err(format!("unknown workload `{other}` (sharegpt|interactive)"))
                }
            };
            let mut trace_cfg = trace_cfg.with_seed(seed(flags)).with_pattern(pattern);
            if models > 1 {
                trace_cfg = trace_cfg.with_models(ModelMix::zipf(models, zipf_s));
            }
            (trace_cfg.generate(), models)
        }
    };

    // Measure the real per-instance pipeline once; the fleet replays it
    // (per-model costs scale off the measured base on multi-tenant runs).
    let mut profile = FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        tp,
        parallelism,
        seed(flags),
    )
    .map_err(|e| e.to_string())?;
    if models > 1 {
        profile = profile.with_scaled_models(models);
    }
    // Registry backend: the golden-pinned whole-artifact default, or a
    // content-addressed catalog — decoded from a packed `.mcs` store when
    // one is given, synthesized per model otherwise.
    let registry_mode = match flags.get("registry").map(String::as_str) {
        None | Some("whole") => RegistryMode::Whole,
        Some("cas") => {
            let catalog = match flags.get("registry-store") {
                Some(path) => {
                    let bytes = std::fs::read(path)
                        .map_err(|e| format!("cannot read --registry-store `{path}`: {e}"))?;
                    let store = ChunkStore::decode(&bytes)
                        .map_err(|e| format!("bad --registry-store `{path}`: {e}"))?;
                    println!(
                        "registry catalog: {} manifest(s) from {path} ({:.2}x dedup on disk)",
                        store.manifests().len(),
                        store.dedup_stats().ratio()
                    );
                    RegistryCatalog::from_store(&store)
                }
                None => synth_catalog(models, &profile, flags.contains_key("template")),
            };
            RegistryMode::ContentAddressed(catalog)
        }
        Some(other) => return Err(format!("unknown registry backend `{other}` (whole|cas)")),
    };
    let faults = match flags.get("faults") {
        None => ClusterFaults::default(),
        Some(spec) => {
            let mut f = ClusterFaults {
                seed: flags
                    .get("fault-seed")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1),
                ..Default::default()
            };
            for token in spec.split(',').filter(|t| !t.is_empty()) {
                match token {
                    "flaky-registry" => f.registry_fail_per_mille = 300,
                    "node-crash" => f.node_crash_per_mille = 50,
                    other => {
                        return Err(format!(
                            "unknown cluster fault `{other}` (flaky-registry|node-crash)"
                        ))
                    }
                }
            }
            f
        }
    };
    let cluster_spec = {
        let mut c = ClusterSpec::uniform(nodes)
            .with_tp(tp)
            .with_cached_prefix(cached)
            .with_cache(CacheConfig {
                capacity: cache_capacity,
                eviction,
            })
            .with_registry_mode(registry_mode)
            .with_faults(faults);
        c.autoscaler.keep_alive_s = keep_alive;
        c.autoscaler.target_queue_depth = queue_depth;
        match get_f64("eval-interval", 0.0)? {
            iv if iv > 0.0 => c.autoscaler.eval_interval_s = Some(iv),
            _ => {}
        }
        if let Some(cfg) = prewarm {
            c = c.with_prewarm(cfg);
        }
        match get_usize("pipeline-k", 0)? as u32 {
            k if k > 0 => c = c.with_pipeline(k),
            _ => {}
        }
        c
    };

    let tele = medusa_telemetry::Registry::new();
    let out = simulate_fleet_traced(&profile, &cluster_spec, policy, &trace, Some(&tele));
    let r = &out.report;
    println!(
        "{} fleet of {nodes} node(s), policy {}, seed {} (simulated):",
        r.strategy,
        r.policy,
        seed(flags)
    );
    println!(
        "  offered {} / completed {}; cold starts {}; scale-to-zero {}",
        r.offered, r.completed, r.cold_starts, r.scale_to_zero_events
    );
    if r.fetch_retries + r.degraded_cold_starts + r.node_failures + r.reroutes > 0 {
        println!(
            "  faults: fetch retries {}; degraded cold starts {}; node failures {}; reroutes {}",
            r.fetch_retries, r.degraded_cold_starts, r.node_failures, r.reroutes
        );
    }
    println!(
        "  makespan {:.3}s; ttft p50 {:.1}ms / p99 {:.1}ms / mean {:.1}ms",
        r.makespan_ns as f64 / 1e9,
        r.ttft_p50_us as f64 / 1e3,
        r.ttft_p99_us as f64 / 1e3,
        r.ttft_mean_us as f64 / 1e3
    );
    println!("  trace fingerprint {:#018x}", r.trace_fingerprint);
    println!(
        "  events processed {} / cancelled {}; conservation residual {}",
        out.stats.events_processed,
        out.stats.events_cancelled,
        out.conservation_residual()
    );
    if let Some(c) = &r.cache {
        let lookups = c.hits + c.misses;
        let rate_pm = (c.hits * 1_000).checked_div(lookups).unwrap_or(0);
        println!(
            "  artifact cache: {} hits / {} misses / {} evictions ({rate_pm}\u{2030} hit rate)",
            c.hits, c.misses, c.evictions
        );
    }
    if let Some(reg) = &r.registry {
        println!(
            "  registry: {} bytes fetched / {} resolved resident; chunks {} hit / {} miss ({:.2}x dedup)",
            reg.bytes_fetched, reg.bytes_resolved, reg.chunk_hits, reg.chunk_misses,
            reg.dedup_ratio()
        );
    }
    if let Some(p) = &r.prewarm {
        println!(
            "  predictive prewarm: {} issued / {} expired unused",
            p.issued, p.unused
        );
    }
    if let Some(n) = r.pipeline_starts {
        println!("  pipeline-parallel cold starts (\u{2265} 2 nodes): {n}");
    }
    if !r.tenants.is_empty() {
        println!(
            "  {:<7} {:>7} {:>9} {:>6} {:>9} {:>9} {:>7}",
            "tenant", "offered", "completed", "colds", "p50_ms", "p99_ms", "slo_pm"
        );
        for t in &r.tenants {
            println!(
                "  m{:<6} {:>7} {:>9} {:>6} {:>9.1} {:>9.1} {:>7}",
                t.model,
                t.offered,
                t.completed,
                t.cold_starts,
                t.ttft_p50_us as f64 / 1e3,
                t.ttft_p99_us as f64 / 1e3,
                t.slo_attained_pm
            );
        }
    }
    // Per-node tables stop being readable at fleet scale: beyond 16 nodes
    // print an aggregate summary plus the busiest workers unless
    // --all-nodes asks for everything.
    let full_table = nodes <= 16 || flags.contains_key("all-nodes");
    let shown: Vec<usize> = if full_table {
        (0..r.nodes.len()).collect()
    } else {
        let active = r.nodes.iter().filter(|n| n.served > 0).count();
        let cached_at_end = r.nodes.iter().filter(|n| n.cached_at_end).count();
        let busy_s: f64 = r.nodes.iter().map(|n| n.busy_ns as f64 / 1e9).sum();
        println!(
            "  fleet: {} of {nodes} nodes served traffic; {} cached at end; {:.3}s busy total",
            active, cached_at_end, busy_s
        );
        let mut by_served: Vec<usize> = (0..r.nodes.len()).collect();
        by_served.sort_by_key(|&i| (std::cmp::Reverse(r.nodes[i].served), i));
        by_served.truncate(8);
        by_served.sort_unstable();
        println!("  busiest {} node(s):", by_served.len());
        by_served
    };
    println!(
        "  {:<6} {:<10} {:>3} {:>6} {:>9} {:>7} {:>9} {:>9} {:>7}",
        "node", "gpu", "tp", "colds", "cold_s", "served", "busy_s", "work_s", "cached"
    );
    for i in shown {
        let n = &r.nodes[i];
        println!(
            "  n{:<5} {:<10} {:>3} {:>6} {:>9.3} {:>7} {:>9.3} {:>9.3} {:>7}",
            i,
            n.gpu,
            n.tp,
            n.cold_starts,
            n.cold_ns as f64 / 1e9,
            n.served,
            n.busy_ns as f64 / 1e9,
            n.work_ns as f64 / 1e9,
            n.cached_at_end
        );
    }
    if let Some(path) = flags.get("out") {
        let json = r.to_json();
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("wrote report {path} ({} bytes)", json.len());
    }
    if let Some(path) = flags.get("arrivals-out") {
        // Per-model arrival history as CSV — replayable into a
        // PrewarmEstimator (`seed_history`) for offline policy studies.
        let csv = ArrivalHistory::from_requests(&trace).to_csv();
        std::fs::write(path, &csv).map_err(|e| e.to_string())?;
        println!("wrote arrival history {path} ({} bytes)", csv.len());
    }
    if let Some(path) = flags.get("telemetry") {
        let snap = tele.snapshot();
        let rendered = match flags.get("format").map(String::as_str).unwrap_or("prom") {
            "chrome" => medusa_telemetry::export::chrome::render(&snap),
            "prom" => medusa_telemetry::export::prometheus::render(&snap),
            other => return Err(format!("unknown format `{other}` (chrome|prom)")),
        };
        std::fs::write(path, &rendered).map_err(|e| e.to_string())?;
        println!("wrote telemetry {path} ({} bytes)", rendered.len());
    }
    Ok(())
}

fn print_report(indent: &str, report: &medusa::ValidationReport) {
    for (check, verdict) in &report.checks {
        match verdict {
            None => println!("{indent}{:<16} ok", check.name()),
            Some(err) => println!("{indent}{:<16} FAILED: {err}", check.name()),
        }
    }
}

fn report_failure(report: &medusa::ValidationReport) -> Option<String> {
    report
        .first_failure()
        .map(|(check, err)| format!("{} ({})", check.name(), err.kind()))
}

/// `validate` — run every [`ArtifactValidator`] check against an artifact
/// file and print per-check verdicts. Exits non-zero when any check fails.
/// The encoding is auto-detected by magic bytes: MAF2 containers take the
/// O(header) fast path and validate every shard in the bundle off one
/// shared section index; other files parse as the JSON debug encoding.
fn validate(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("artifact").ok_or("--artifact is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let gpu = GpuSpec::a100_40gb();
    let resolve = |name: &str| -> Result<ModelSpec, String> {
        ModelSpec::by_name(name)
            .ok_or_else(|| format!("unknown model `{name}` (see `medusa-cli models`)"))
    };
    if is_maf2(&bytes) {
        let reader = Maf2Reader::open(&bytes).map_err(|e| {
            format!(
                "cannot open MAF2 artifact `{path}`: {e} (kind {})",
                e.kind()
            )
        })?;
        let name = flags
            .get("model")
            .map(String::as_str)
            .unwrap_or_else(|| reader.model());
        let spec = resolve(name)?;
        let validator = ArtifactValidator::for_target(&spec, &gpu);
        println!(
            "validating MAF2 bundle <{}, {}> tp {} v{} ({} shard(s), {} bytes):",
            reader.model(),
            reader.gpu(),
            reader.tp(),
            reader.version(),
            reader.shard_count(),
            bytes.len()
        );
        let mut failure = None;
        for (rank, report) in validator.validate_bundle(&reader) {
            println!("  rank {rank}:");
            print_report("    ", &report);
            if failure.is_none() {
                failure = report_failure(&report);
            }
        }
        match failure {
            None => {
                println!("artifact is valid");
                Ok(())
            }
            Some(f) => Err(format!("artifact failed validation at {f}")),
        }
    } else {
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| format!("`{path}` is neither MAF2 (no magic) nor UTF-8 JSON"))?;
        let artifact = MaterializedState::from_json(json).map_err(|e| e.to_string())?;
        let name = flags
            .get("model")
            .map(String::as_str)
            .unwrap_or(artifact.model.as_str());
        let spec = resolve(name)?;
        let validator =
            ArtifactValidator::for_target(&spec, &gpu).shard(artifact.rank, artifact.tp);
        let report = validator.validate(&artifact);
        println!(
            "validating artifact <{}, {}> rank {}/{} v{}:",
            artifact.model, artifact.gpu, artifact.rank, artifact.tp, artifact.version
        );
        print_report("  ", &report);
        match report_failure(&report) {
            None => {
                println!("artifact is valid");
                Ok(())
            }
            Some(f) => Err(format!("artifact failed validation at {f}")),
        }
    }
}

/// `convert` — translate an artifact between the JSON debug encoding and
/// the MAF2 binary container, auto-detecting the input format by magic
/// bytes. Lowering a multi-shard bundle to JSON needs `--rank N` to pick
/// the shard, since the JSON encoding holds exactly one.
fn convert(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("in").ok_or("--in is required")?;
    let output = flags.get("out").ok_or("--out is required")?;
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    if is_maf2(&bytes) {
        let reader = Maf2Reader::open(&bytes).map_err(|e| e.to_string())?;
        let ranks = reader.shard_ranks();
        let rank = match (flags.get("rank"), ranks.as_slice()) {
            (Some(r), _) => r
                .parse::<u32>()
                .map_err(|_| format!("--rank wants an integer, got `{r}`"))?,
            (None, [only]) => *only,
            (None, _) => {
                return Err(format!(
                    "`{input}` bundles {} shards (ranks {:?}); pass --rank N to pick one",
                    ranks.len(),
                    ranks
                ))
            }
        };
        let state = reader.shard(rank).map_err(|e| e.to_string())?;
        let json = state.to_json().map_err(|e| e.to_string())?;
        std::fs::write(output, &json).map_err(|e| e.to_string())?;
        println!(
            "converted MAF2 rank {rank}/{} -> JSON {output} ({} -> {} bytes)",
            reader.tp(),
            bytes.len(),
            json.len()
        );
    } else {
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| format!("`{input}` is neither MAF2 (no magic) nor UTF-8 JSON"))?;
        let state = MaterializedState::from_json(json).map_err(|e| e.to_string())?;
        let encoded = state.to_maf2().map_err(|e| e.to_string())?;
        std::fs::write(output, &encoded).map_err(|e| e.to_string())?;
        println!(
            "converted JSON rank {}/{} -> MAF2 {output} ({} -> {} bytes)",
            state.rank,
            state.tp,
            bytes.len(),
            encoded.len()
        );
    }
    Ok(())
}

/// A synthetic per-model chunk catalog for `--registry cas` runs without a
/// packed store: 16 model-private weight pseudo-chunks per model, plus —
/// with `--template` — a family-shared block (graph topology, replay ops,
/// pointer tables; ~1/5 of the base artifact) that every member references
/// by the same digests, so cross-model cold starts on a warm node resolve
/// it without a transfer.
fn synth_catalog(models: u32, profile: &FleetProfile, template: bool) -> RegistryCatalog {
    const WEIGHT_CHUNKS: u64 = 16;
    const TEMPLATE_CHUNKS: u64 = 4;
    let shared_total = if template {
        profile.artifact_bytes_for(0) / 5
    } else {
        0
    };
    RegistryCatalog {
        models: (0..models.max(1))
            .map(|m| {
                let private = profile.artifact_bytes_for(m).saturating_sub(shared_total);
                let mut units = Vec::new();
                for t in 0..TEMPLATE_CHUNKS {
                    if template {
                        units.push(FetchUnit {
                            digest: 0x7e3a_0a7e_0000_0000 | t,
                            bytes: shared_total / TEMPLATE_CHUNKS,
                        });
                    }
                }
                for k in 0..WEIGHT_CHUNKS {
                    units.push(FetchUnit {
                        digest: (u64::from(m) << 32) | 0x5eed_0000 | k,
                        bytes: private / WEIGHT_CHUNKS,
                    });
                }
                ModelManifest { units }
            })
            .collect(),
    }
}

/// `registry` — operate the content-addressed chunk store: `pack` chunks
/// and deduplicates MAF2 artifacts into a `.mcs` store file, `inspect`
/// lists a store's manifests and templates, `dedup-stats` prints the
/// storage accounting.
fn registry(args: &[String]) -> Result<(), String> {
    let usage = "usage: medusa-cli registry <pack|inspect|dedup-stats> [flags]";
    let Some(verb) = args.first() else {
        return Err(usage.to_string());
    };
    let flags = parse_flags(&args[1..]);
    match verb.as_str() {
        "pack" => registry_pack(&flags),
        "inspect" => registry_inspect(&flags, true),
        "dedup-stats" => registry_inspect(&flags, false),
        other => Err(format!("unknown registry verb `{other}`\n{usage}")),
    }
}

/// Reads an artifact file as MAF2 bytes, lifting the JSON debug encoding
/// through `to_maf2` when the magic is absent.
fn read_maf2_bytes(path: &str) -> Result<Vec<u8>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if is_maf2(&bytes) {
        Ok(bytes)
    } else {
        let json = std::str::from_utf8(&bytes)
            .map_err(|_| format!("`{path}` is neither MAF2 (no magic) nor UTF-8 JSON"))?;
        let state = MaterializedState::from_json(json).map_err(|e| e.to_string())?;
        state.to_maf2().map_err(|e| e.to_string())
    }
}

fn print_dedup(stats: &medusa::DedupStats) {
    println!(
        "dedup: {} manifest(s), {} unique chunk(s); {} logical -> {} stored bytes ({:.2}x)",
        stats.manifests,
        stats.unique_chunks,
        stats.logical_bytes,
        stats.stored_bytes,
        stats.ratio()
    );
}

fn registry_pack(flags: &HashMap<String, String>) -> Result<(), String> {
    let list = flags
        .get("artifacts")
        .ok_or("--artifacts a.maf2,b.maf2[,...] is required")?;
    let variants: u32 = match flags.get("variants") {
        Some(v) => v
            .parse()
            .map_err(|e| format!("bad --variants `{v}`: {e}"))?,
        None => 0,
    };
    let mut store = ChunkStore::new();
    for path in list.split(',').filter(|p| !p.is_empty()) {
        let bytes = read_maf2_bytes(path)?;
        let m = store
            .pack(&bytes)
            .map_err(|e| format!("cannot pack `{path}`: {e}"))?;
        println!(
            "packed {path}: <{}, {}> tp {} — {} chunk(s) / {} bytes",
            m.model,
            m.gpu,
            m.tp,
            m.chunks.len(),
            m.total_bytes
        );
        if variants > 0 {
            // Derive deterministic fine-tune siblings from this capture:
            // same family skeleton, per-variant weight deltas — the
            // fine-tune-family regime the chunk store is built for.
            let base = MaterializedState::from_maf2(&bytes)
                .map_err(|e| format!("cannot decode `{path}`: {e}"))?;
            let family = flags.get("template").map_or("family", String::as_str);
            let (template, base_delta) =
                ArtifactTemplate::extract(std::slice::from_ref(&base), family)
                    .map_err(|e| e.to_string())?;
            for v in 1..=variants {
                let name = format!("{}-v{v}", base.model);
                let delta = base_delta.derive_variant(&name, u64::from(v));
                for shard in template.instantiate(&delta).map_err(|e| e.to_string())? {
                    let vb = shard.to_maf2().map_err(|e| e.to_string())?;
                    let vm = store
                        .pack(&vb)
                        .map_err(|e| format!("cannot pack variant `{name}`: {e}"))?;
                    println!(
                        "packed variant {name}: {} chunk(s) / {} bytes",
                        vm.chunks.len(),
                        vm.total_bytes
                    );
                }
            }
        }
    }
    if let Some(family) = flags.get("template") {
        let t = store.factor_family(family).map_err(|e| e.to_string())?;
        println!(
            "factored template `{}`: {} shared chunk(s) / {} bytes (digest {:#018x})",
            t.family,
            t.chunks.len(),
            t.bytes,
            t.digest
        );
        for m in store.manifests() {
            println!(
                "  {} delta on top of the template: {} bytes",
                m.model,
                ChunkStore::delta_bytes(m, &t)
            );
        }
    }
    print_dedup(&store.dedup_stats());
    if let Some(path) = flags.get("out") {
        let encoded = store.encode();
        std::fs::write(path, &encoded).map_err(|e| e.to_string())?;
        println!(
            "wrote {path} ({:.1} KiB store)",
            encoded.len() as f64 / 1024.0
        );
    }
    Ok(())
}

fn registry_inspect(flags: &HashMap<String, String>, full: bool) -> Result<(), String> {
    let path = flags.get("store").ok_or("--store FILE.mcs is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let store = ChunkStore::decode(&bytes).map_err(|e| format!("bad store `{path}`: {e}"))?;
    if full {
        println!(
            "store {path}: {} manifest(s), {} template(s)",
            store.manifests().len(),
            store.templates().len()
        );
        println!(
            "  {:<16} {:<12} {:>3} {:>12} {:>7} {:>18}",
            "model", "gpu", "tp", "bytes", "chunks", "template"
        );
        for m in store.manifests() {
            println!(
                "  {:<16} {:<12} {:>3} {:>12} {:>7} {:>18}",
                m.model,
                m.gpu,
                m.tp,
                m.total_bytes,
                m.chunks.len(),
                m.template.map_or("-".to_string(), |d| format!("{d:#018x}"))
            );
        }
        for t in store.templates() {
            println!(
                "  template `{}`: {} chunk(s) / {} bytes (digest {:#018x})",
                t.family,
                t.chunks.len(),
                t.bytes,
                t.digest
            );
        }
    }
    print_dedup(&store.dedup_stats());
    Ok(())
}

fn inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let artifact = load_artifact(flags)?.ok_or("--artifact is required")?;
    println!(
        "artifact <{}, {}> rank {}/{} v{}",
        artifact.model, artifact.gpu, artifact.rank, artifact.tp, artifact.version
    );
    println!("  kv free bytes: {}", artifact.kv_free_bytes);
    println!(
        "  replay: {} prefix allocs + {} ops; labels {}; permanent contents {}; ptr tables {}",
        artifact.replay_prefix_allocs,
        artifact.replay_ops.len(),
        artifact.labels.len(),
        artifact.permanent_contents.len(),
        artifact.permanent_ptr_tables.len()
    );
    let st = &artifact.stats;
    println!(
        "  {} graphs / {} nodes; {} ptr params, {} consts, {} multi-match; dlsym {} / hidden {}",
        artifact.graphs.len(),
        st.nodes,
        st.pointer_params,
        st.const_params,
        st.multi_match_pointers,
        st.dlsym_restorable_nodes,
        st.hidden_kernel_nodes
    );
    Ok(())
}
