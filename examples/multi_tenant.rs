//! Multi-tenant serving under a contended artifact cache: Zipf-skewed
//! traffic over eight models shares one small fleet, and each node's
//! bounded cache (four artifacts) has to decide which materialized
//! `<GPU type, model type>` entries to keep.
//!
//! What the paper's §6 sharing model implies with many tenants: the cache
//! victim order *is* the cold-start bill. LRU tracks recency, so a burst
//! of cheap, popular models evicts the expensive long-tail artifacts
//! right before they recur; cost-aware eviction keeps the artifacts whose
//! re-fetch + restore would hurt the most, and the tail TTFT pays the
//! difference. The vanilla fleet reloads from scratch either way and
//! serves as the floor.
//!
//! Run with: `cargo run --release --example multi_tenant [rps]`

use medusa::{Parallelism, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, CacheCapacity, CacheConfig, ClusterReport, ClusterSpec, EvictionPolicy,
    FleetProfile, Policy,
};
use medusa_workload::{ModelMix, Request, TraceConfig};

/// Distinct tenant models sharing the fleet.
const MODELS: u32 = 8;
/// Zipf popularity skew across the tenants.
const ZIPF_S: f64 = 1.0;
/// Per-node artifact-cache capacity, in cached `<GPU, model>` entries.
const CACHE_ARTIFACTS: u32 = 4;
/// Fleet size.
const NODES: usize = 4;
/// Trace seed.
const SEED: u64 = 42;

fn mt_cluster(eviction: EvictionPolicy) -> ClusterSpec {
    let mut c = ClusterSpec::uniform(NODES).with_cache(CacheConfig {
        capacity: CacheCapacity::Artifacts(CACHE_ARTIFACTS),
        eviction,
    });
    // Short keep-alive: nodes churn through scale-to-zero, so cold starts
    // recur and the eviction order actually gets exercised.
    c.autoscaler.keep_alive_s = 2.0;
    c
}

fn run(profile: &FleetProfile, eviction: EvictionPolicy, trace: &[Request]) -> ClusterReport {
    simulate_fleet(
        profile,
        &mt_cluster(eviction),
        Policy::ColdStartAware,
        trace,
    )
    .report
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rps: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1.5);
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    println!(
        "measuring per-instance profiles for {} x{MODELS} tenants ...",
        spec.name()
    );
    let medusa = FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        gpu.clone(),
        cost.clone(),
        1,
        Parallelism::Overlapped,
        7,
    )?
    .with_scaled_models(MODELS);
    let vanilla = FleetProfile::measure(
        Strategy::Vanilla,
        &spec,
        gpu,
        cost,
        1,
        Parallelism::Overlapped,
        7,
    )?
    .with_scaled_models(MODELS);

    let trace = TraceConfig::sharegpt(rps, 600.0)
        .with_seed(SEED)
        .with_models(ModelMix::Zipf {
            models: MODELS,
            s: ZIPF_S,
        })
        .generate();
    println!(
        "replaying {} requests over {MODELS} Zipf(s={ZIPF_S}) tenants on {NODES} nodes, \
         cache cap {CACHE_ARTIFACTS} artifacts/node\n",
        trace.len()
    );

    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>8} {:>8} {:>6}",
        "fleet", "colds", "p99_ms", "mean_ms", "hits", "misses", "evict"
    );
    let mut by_policy = Vec::new();
    for eviction in EvictionPolicy::ALL {
        let r = run(&medusa, eviction, &trace);
        let c = r.cache.expect("bounded multi-tenant run reports cache");
        println!(
            "{:<22} {:>6} {:>10.1} {:>10.1} {:>8} {:>8} {:>6}",
            format!("medusa/{}", eviction.name()),
            r.cold_starts,
            r.ttft_p99_us as f64 / 1e3,
            r.ttft_mean_us as f64 / 1e3,
            c.hits,
            c.misses,
            c.evictions
        );
        by_policy.push((eviction, r));
    }
    let vr = run(&vanilla, EvictionPolicy::Lru, &trace);
    println!(
        "{:<22} {:>6} {:>10.1} {:>10.1} {:>8} {:>8} {:>6}",
        "vanilla",
        vr.cold_starts,
        vr.ttft_p99_us as f64 / 1e3,
        vr.ttft_mean_us as f64 / 1e3,
        "-",
        "-",
        "-"
    );

    let cost_aware = &by_policy
        .iter()
        .find(|(e, _)| *e == EvictionPolicy::CostAware)
        .expect("cost-aware ran")
        .1;
    let lru = &by_policy
        .iter()
        .find(|(e, _)| *e == EvictionPolicy::Lru)
        .expect("lru ran")
        .1;

    println!("\nper-tenant tail (medusa/cost-aware vs vanilla):");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>8}",
        "tenant", "offered", "medusa_p99", "vanilla_p99", "slo_pm"
    );
    for (m, v) in cost_aware.tenants.iter().zip(vr.tenants.iter()) {
        println!(
            "m{:<7} {:>8} {:>10.1}ms {:>10.1}ms {:>8}",
            m.model,
            m.offered,
            m.ttft_p99_us as f64 / 1e3,
            v.ttft_p99_us as f64 / 1e3,
            m.slo_attained_pm
        );
    }

    println!(
        "\ncost-aware keeps the expensive artifacts: aggregate TTFT p99 {:.1}ms vs {:.1}ms \
         under LRU ({:.1}ms vanilla floor)",
        cost_aware.ttft_p99_us as f64 / 1e3,
        lru.ttft_p99_us as f64 / 1e3,
        vr.ttft_p99_us as f64 / 1e3
    );
    assert!(
        cost_aware.ttft_p99_us < lru.ttft_p99_us,
        "cost-aware eviction must beat LRU on aggregate TTFT p99"
    );
    assert!(
        cost_aware.ttft_p99_us < vr.ttft_p99_us,
        "the medusa fleet must beat the vanilla floor"
    );
    Ok(())
}
