//! Inspect a materialization artifact: what exactly does Medusa save per
//! `<GPU type, model type>`? Dumps the analysis statistics, the replay
//! sequence shape, the kernel name table, and a sample node's materialized
//! parameters (paper Figures 4 and 5).
//!
//! Run with: `cargo run --release --example inspect_artifact [model]`

use medusa::{materialize_offline, ParamSpec, ReplayOp};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Qwen1.5-0.5B".to_string());
    let spec = ModelSpec::by_name(&model)
        .ok_or_else(|| format!("unknown model `{model}`; see ModelSpec::catalog()"))?;
    let (artifact, _) = materialize_offline(&spec, GpuSpec::a100_40gb(), CostModel::default(), 3)?;

    println!(
        "artifact for <{}, {}> (version {})",
        artifact.model, artifact.gpu, artifact.version
    );
    println!(
        "  materialized KV init: {} bytes free GPU memory",
        artifact.kv_free_bytes
    );
    let mallocs = artifact
        .replay_ops
        .iter()
        .filter(|o| matches!(o, ReplayOp::Malloc { .. }))
        .count();
    let frees = artifact.replay_ops.len() - mallocs;
    println!(
        "  replay sequence: {} natural prefix allocs + {} replayed ops ({} mallocs / {} frees)",
        artifact.replay_prefix_allocs,
        artifact.replay_ops.len(),
        mallocs,
        frees
    );
    println!(
        "  labels: {} semantic buffer bindings",
        artifact.labels.len()
    );
    println!(
        "  permanent contents: {} buffers x 16-byte digests (copy-free restoration, §4.3)",
        artifact.permanent_contents.len()
    );

    let st = &artifact.stats;
    println!("\nanalysis statistics:");
    println!(
        "  graphs {} / nodes {} (Table 1: {})",
        artifact.graphs.len(),
        st.nodes,
        spec.table1_nodes()
    );
    println!(
        "  params: {} pointers (indirect indices) / {} constants",
        st.pointer_params, st.const_params
    );
    println!(
        "  multi-match pointer hazards disambiguated (Fig. 6): {}",
        st.multi_match_pointers
    );
    println!(
        "  kernel restoration: {} nodes via dlsym ({:.1}%), {} via triggering-kernels",
        st.dlsym_restorable_nodes,
        100.0 * st.dlsym_restorable_nodes as f64 / st.nodes as f64,
        st.hidden_kernel_nodes
    );
    println!(
        "  buffers referenced: {} model-parameter / {} temporary / {} permanent",
        st.param_buffers, st.temp_buffers, st.permanent_buffers
    );

    // Kernel name table, grouped by library.
    let mut by_lib: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for g in &artifact.graphs {
        for n in &g.nodes {
            *by_lib
                .entry(&n.library)
                .or_default()
                .entry(&n.kernel)
                .or_default() += 1;
        }
    }
    println!("\nkernel name table:");
    for (lib, kernels) in &by_lib {
        println!("  {lib} ({} distinct kernels)", kernels.len());
        for (k, count) in kernels.iter().take(6) {
            println!("    {k:<44} x{count}");
        }
        if kernels.len() > 6 {
            println!("    ... and {} more", kernels.len() - 6);
        }
    }

    // One materialized node, spelled out (the Fig. 4 node after analysis).
    let g = &artifact.graphs[0];
    let node = &g.nodes[5];
    println!(
        "\nsample node (graph batch={}, node 5): kernel `{}` of `{}`",
        g.batch, node.kernel, node.library
    );
    for (i, p) in node.params.iter().enumerate() {
        match p {
            ParamSpec::Const { bytes } => {
                println!("  param {i}: const {} bytes = {:02x?}", bytes.len(), bytes)
            }
            ParamSpec::IndirectPtr { alloc_seq, offset, raw } => println!(
                "  param {i}: indirect index pointer -> allocation #{alloc_seq} +{offset} (offline raw {raw:#x})"
            ),
        }
    }

    let json = artifact.to_json()?;
    println!(
        "\nserialized artifact size: {:.1} KiB of JSON",
        json.len() as f64 / 1024.0
    );
    Ok(())
}
