//! Quickstart: materialize a model offline once, then compare a vanilla
//! cold start against a Medusa cold start restoring the materialized state.
//!
//! Run with: `cargo run --release --example quickstart`

use medusa::{materialize_offline, ColdStart, ColdStartOptions, Parallelism, Stage, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    // ---------------------------------------------------------- offline
    // Runs once per <GPU type, model type>: an instrumented cold start
    // captures all 35 decode graphs, then the analysis stage turns raw
    // pointers into indirect index pointers and kernel addresses into
    // mangled names (paper §3–§5).
    println!("offline phase for {} on {} ...", spec.name(), gpu.name());
    let (artifact, offline) = materialize_offline(&spec, gpu.clone(), cost.clone(), 1)?;
    println!(
        "  capturing {:.1}s + analysis {:.1}s = {:.1}s (simulated; paper Fig. 9: ~39s avg)",
        offline.capture.as_secs_f64(),
        offline.analysis.as_secs_f64(),
        offline.total().as_secs_f64()
    );
    println!(
        "  materialized {} graphs / {} nodes; {} pointer params, {} permanent buffers\n",
        artifact.graphs.len(),
        artifact.total_nodes(),
        artifact.stats.pointer_params,
        artifact.stats.permanent_buffers
    );

    // ----------------------------------------------------------- online
    // Two cold starts in *different* simulated processes (different seeds →
    // different library and buffer addresses): vanilla vs Medusa.
    let opts = ColdStartOptions {
        seed: 2024,
        ..Default::default()
    };
    let (_v_engine, vanilla) = ColdStart::new(&spec)
        .strategy(Strategy::Vanilla)
        .gpu(gpu.clone())
        .cost(cost.clone())
        .options(opts)
        .run()?
        .into_single();
    let (mut m_engine, medusa) = ColdStart::new(&spec)
        .strategy(Strategy::Medusa)
        .gpu(gpu.clone())
        .cost(cost.clone())
        .options(opts)
        .artifact(&artifact)
        .run()?
        .into_single();

    println!("cold start comparison ({}):", spec.name());
    for (name, r) in [("vanilla vLLM", &vanilla), ("Medusa", &medusa)] {
        println!(
            "  {:<14} loading {:.3}s (kv init {:.3}s, capturing {:.3}s), total {:.3}s",
            name,
            r.loading.as_secs_f64(),
            r.stage(Stage::KvCacheInit).as_secs_f64(),
            r.stage(Stage::Capture).as_secs_f64(),
            r.total.as_secs_f64()
        );
    }
    let reduction = 1.0 - medusa.loading.as_secs_f64() / vanilla.loading.as_secs_f64();
    println!(
        "  => loading-phase reduction: {:.1}% (paper Fig. 7: 42.5% avg)\n",
        100.0 * reduction
    );

    // ------------------------------------- parallel cold-start engine
    // Restoration stages run on a dependency-graph scheduler (DESIGN.md
    // §7); the `parallelism` knob on ColdStartOptions picks how much of
    // the legal overlap is exploited. Total work is mode-invariant at
    // tp=1 — only the layout on the timeline (and so the wall clock)
    // changes.
    println!("parallelism knob (Medusa, same seed):");
    for mode in Parallelism::ALL {
        let opts = ColdStartOptions {
            seed: 2024,
            parallelism: mode,
            ..Default::default()
        };
        let (_, r) = ColdStart::new(&spec)
            .strategy(Strategy::Medusa)
            .gpu(gpu.clone())
            .cost(cost.clone())
            .options(opts)
            .artifact(&artifact)
            .run()?
            .into_single();
        let path: Vec<String> = r.critical_path.iter().map(|s| format!("{s:?}")).collect();
        println!(
            "  {:<26} loading {:.3}s  work {:.3}s  critical path: {}",
            mode.to_string(),
            r.loading.as_secs_f64(),
            r.work().as_secs_f64(),
            path.join(" -> ")
        );
    }
    println!();

    // The restored instance actually serves: run a prefill + a few decode
    // steps through the restored CUDA graphs.
    let ttft = m_engine.prefill(1, 161)?;
    let step = m_engine.decode_step(1)?;
    println!(
        "restored instance serves: prefill(161 tok) {:.1}ms, graph decode step {:.2}ms",
        ttft.as_millis_f64(),
        step.as_millis_f64()
    );
    Ok(())
}
