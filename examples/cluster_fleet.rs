//! Fleet-level cold-start economics: run the same bursty trace through
//! Medusa fleets (cold vs pre-populated node-local artifact caches) and a
//! vanilla fleet under every scheduler policy, and compare makespan, TTFT
//! tails, and cold-start counts.
//!
//! What the paper's §6 sharing model implies at fleet scale: a Medusa node
//! whose local cache holds the `<GPU type, model type>` entry restores far
//! faster than a vanilla reload, while a cache miss additionally streams
//! the entry from the registry — so *where* the scheduler wakes nodes
//! matters (coldstart-aware prefers cached ones), and pre-seeding caches
//! makes aggressive scale-out nearly free.
//!
//! Run with: `cargo run --release --example cluster_fleet [rps]`

use medusa::{Parallelism, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, ClusterFaults, ClusterSpec, FleetProfile, Policy, PrewarmConfig, PrewarmPolicy,
};
use medusa_workload::{ArrivalPattern, ModelMix, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rps: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(8.0);
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    println!("measuring fleet profiles for {} ...", spec.name());
    let medusa = FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        gpu.clone(),
        cost.clone(),
        1,
        Parallelism::Overlapped,
        7,
    )?;
    let vanilla = FleetProfile::measure(
        Strategy::Vanilla,
        &spec,
        gpu,
        cost,
        1,
        Parallelism::Overlapped,
        7,
    )?;
    println!(
        "  medusa  loading {:.3}s + fetch {:.3}s on cache miss",
        medusa.perf.loading.as_secs_f64(),
        medusa.fetch.as_secs_f64()
    );
    println!(
        "  vanilla loading {:.3}s (nothing to fetch, nothing cached)",
        vanilla.perf.loading.as_secs_f64()
    );

    // 4 workers under a 15x burst trace; fleets differ only in strategy
    // and how many node-local caches start populated.
    let trace = TraceConfig::sharegpt(rps, 60.0)
        .with_seed(42)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate();
    println!(
        "\nreplaying {} requests ({} rps offered, 15x bursts) on 4 nodes:\n",
        trace.len(),
        rps
    );
    let fleets = [
        ("medusa/seeded", &medusa, 4usize), // every cache pre-populated
        ("medusa/1-cache", &medusa, 1),     // registry seeded one node
        ("vanilla", &vanilla, 0),
    ];
    println!(
        "{:<16} {:<16} {:>6} {:>10} {:>12} {:>12}",
        "fleet", "policy", "colds", "makespan", "ttft p50", "ttft p99"
    );
    for (label, profile, cached) in fleets {
        let cluster = ClusterSpec::uniform(4).with_cached_prefix(cached);
        for policy in Policy::ALL {
            let out = simulate_fleet(profile, &cluster, policy, &trace);
            let r = &out.report;
            println!(
                "{:<16} {:<16} {:>6} {:>9.3}s {:>10.1}ms {:>10.1}ms",
                label,
                r.policy,
                r.cold_starts,
                r.makespan_ns as f64 / 1e9,
                r.ttft_p50_us as f64 / 1e3,
                r.ttft_p99_us as f64 / 1e3
            );
        }
    }
    println!(
        "\npre-seeded caches make every Medusa cold start a cheap local\n\
         restore; with one seeded cache, coldstart-aware routes scale-ups\n\
         there first, while cold caches pay the registry fetch once."
    );

    // Unhappy path: a flaky artifact registry (30% of fetches time out).
    // Retries + backoff absorb the failures; exhausted budgets degrade
    // that cold start to a vanilla load — the fleet keeps serving either
    // way, and the report counts what the faults cost.
    let flaky = ClusterSpec::uniform(4).with_faults(ClusterFaults {
        seed: 9,
        registry_fail_per_mille: 300,
        ..Default::default()
    });
    let out = simulate_fleet(&medusa, &flaky, Policy::ColdStartAware, &trace);
    let r = &out.report;
    println!(
        "\nmedusa on a flaky registry (30% fetch failures, coldstart-aware):\n\
         {:>6} colds {:>9.3}s makespan {:>10.1}ms ttft p99; \
         {} fetch retries, {} degraded cold starts",
        r.cold_starts,
        r.makespan_ns as f64 / 1e9,
        r.ttft_p99_us as f64 / 1e3,
        r.fetch_retries,
        r.degraded_cold_starts
    );

    // Predictive race: the same bursty multi-tenant trace under the
    // reactive baseline, start-cost locality routing, locality plus the
    // histogram prewarm estimator, and pipeline-parallel cold starts —
    // the policy matrix the CI policy-race gate pins.
    let mt = medusa.clone().with_scaled_models(4);
    let mt_trace = TraceConfig::sharegpt(4.0, 120.0)
        .with_seed(42)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .with_models(ModelMix::zipf(4, 1.0))
        .generate();
    let base = ClusterSpec::uniform(6).with_keep_alive(4.0);
    let races: [(&str, Policy, ClusterSpec); 4] = [
        ("reactive", Policy::ColdStartAware, base.clone()),
        ("locality", Policy::Locality, base.clone()),
        (
            // High percentile so the estimator targets the quiet gaps
            // *between* bursts; intra-burst gaps land while the node is
            // still warm and never turn into prewarms.
            "locality+prewarm",
            Policy::Locality,
            base.clone().with_prewarm(PrewarmConfig {
                policy: PrewarmPolicy::Histogram { percentile_pm: 950 },
                lead_s: 1.0,
            }),
        ),
        ("pipeline k=2", Policy::Pipeline, base.with_pipeline(2)),
    ];
    println!(
        "\npredictive policies, 4 Zipf tenants on 6 nodes (4s keep-alive):\n\
         {:<18} {:>6} {:>12} {:>12} {:>16} {:>9}",
        "scheduler", "colds", "ttft p50", "ttft p99", "prewarms (waste)", "sharded"
    );
    for (label, policy, cluster) in races {
        let out = simulate_fleet(&mt, &cluster, policy, &mt_trace);
        let r = &out.report;
        let prewarms = r
            .prewarm
            .as_ref()
            .map_or("-".to_string(), |p| format!("{} ({})", p.issued, p.unused));
        let sharded = r.pipeline_starts.map_or("-".to_string(), |n| n.to_string());
        println!(
            "{:<18} {:>6} {:>10.1}ms {:>10.1}ms {:>16} {:>9}",
            label,
            r.cold_starts,
            r.ttft_p50_us as f64 / 1e3,
            r.ttft_p99_us as f64 / 1e3,
            prewarms,
            sharded
        );
    }
    println!(
        "\nthe estimator schedules a cold start ahead of each forecast\n\
         arrival, so predictable bursts stop paying the cold-start tail;\n\
         pipeline mode shards each start across nodes, halving its span."
    );
    Ok(())
}
