//! Tensor-parallel materialization (paper §8 extension): materialize and
//! restore a 2-way sharded instance — one artifact and one indirect index
//! pointer table per rank.
//!
//! Run with: `cargo run --release --example tp_shards [tp]`

use medusa::{materialize_offline_tp, ColdStart, ColdStartOptions, Stage, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tp: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2);
    let spec = ModelSpec::by_name("Qwen1.5-4B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    println!(
        "offline phase for {} with tp={tp} ({} ranks in parallel)...",
        spec.name(),
        tp
    );
    let (artifacts, report) = materialize_offline_tp(&spec, tp, gpu.clone(), cost.clone(), 7)?;
    for artifact in artifacts.iter() {
        println!(
            "  rank {}/{}: {} graphs / {} nodes / {} replay ops / kv free {:.1} GiB",
            artifact.rank,
            artifact.tp,
            artifact.graphs.len(),
            artifact.total_nodes(),
            artifact.replay_ops.len(),
            artifact.kv_free_bytes as f64 / (1u64 << 30) as f64
        );
    }
    println!(
        "  slowest rank: {:.1}s offline (simulated)\n",
        report.total().as_secs_f64()
    );

    let opts = ColdStartOptions {
        warm_container: true,
        ..Default::default()
    };
    let vanilla = ColdStart::new(&spec)
        .strategy(Strategy::Vanilla)
        .gpu(gpu.clone())
        .cost(cost.clone())
        .options(opts)
        .tp(tp)
        .run()?;
    let medusa = ColdStart::new(&spec)
        .strategy(Strategy::Medusa)
        .gpu(gpu)
        .cost(cost)
        .options(opts)
        .artifacts(&artifacts)
        .run()?;

    println!("tensor-parallel cold start (instance ready when the slowest rank is):");
    for (name, run) in [("vanilla vLLM", &vanilla), ("Medusa", &medusa)] {
        println!("  {name}: loading {:.3}s", run.loading().as_secs_f64());
        for (rank, r) in run.reports.iter().enumerate() {
            println!(
                "    rank {rank}: weights {:.3}s, kv init {:.3}s, capturing {:.3}s",
                r.stage(Stage::WeightsLoad).as_secs_f64(),
                r.stage(Stage::KvCacheInit).as_secs_f64(),
                r.stage(Stage::Capture).as_secs_f64()
            );
        }
    }
    let reduction = 1.0 - medusa.loading().as_secs_f64() / vanilla.loading().as_secs_f64();
    println!("\nloading reduction at tp={tp}: {:.1}%", 100.0 * reduction);
    println!("(per-rank artifacts are rank-checked: shards cannot cross-restore)");
    Ok(())
}
