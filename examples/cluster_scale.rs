//! Large-fleet scale demo: a thousand-node serverless fleet absorbing ten
//! thousand requests per second, simulated through the discrete-event core
//! in wall-clock seconds.
//!
//! This is the regime the paper's fleet argument actually lives in —
//! cheap materialized cold starts only matter when a scheduler is waking
//! and retiring instances constantly — and the regime a naive
//! step-the-world simulator cannot reach. The event core keeps per-event
//! cost flat (binary-heap queue, O(1) backlog accounting, reused routing
//! scratch), so millions of events replay faster than real time.
//!
//! Run with: `cargo run --release --example cluster_scale [nodes] [rps]`

use medusa::{Parallelism, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{simulate_fleet, ClusterSpec, FleetProfile, Policy};
use medusa_workload::TraceConfig;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(1000);
    let rps: f64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000.0);
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    println!("measuring fleet profiles for {} ...", spec.name());
    let medusa = FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        gpu.clone(),
        cost.clone(),
        1,
        Parallelism::Overlapped,
        77,
    )?;
    let vanilla = FleetProfile::measure(
        Strategy::Vanilla,
        &spec,
        gpu,
        cost,
        1,
        Parallelism::Overlapped,
        77,
    )?;

    // Interactive workload (short prompts, short outputs) so the offered
    // load is dominated by arrival churn, not decode length — the
    // worst case for schedulers and the best case for cheap cold starts.
    let trace = TraceConfig::interactive(rps, 100.0)
        .with_seed(77)
        .generate();
    println!(
        "replaying {} requests ({rps} rps offered) on {nodes} nodes:\n",
        trace.len()
    );
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12} {:>11} {:>9}",
        "fleet", "colds", "ttft p50", "ttft p99", "events", "events/s", "wall"
    );
    let mut rows = Vec::new();
    for (label, profile) in [("medusa", &medusa), ("vanilla", &vanilla)] {
        let cluster = ClusterSpec::uniform(nodes).with_cached_prefix(nodes);
        let start = Instant::now();
        let out = simulate_fleet(profile, &cluster, Policy::ColdStartAware, &trace);
        let wall = start.elapsed().as_secs_f64();
        let r = &out.report;
        assert_eq!(
            out.conservation_residual(),
            0,
            "every arrival must be completed, queued, or in flight"
        );
        println!(
            "{:<10} {:>9} {:>10.1}ms {:>10.1}ms {:>12} {:>11.0} {:>8.1}s",
            label,
            r.cold_starts,
            r.ttft_p50_us as f64 / 1e3,
            r.ttft_p99_us as f64 / 1e3,
            out.stats.events_processed,
            out.stats.events_processed as f64 / wall.max(1e-9),
            wall
        );
        rows.push(r.ttft_p99_us);
    }
    println!(
        "\nmedusa ttft p99 {:.1}ms vs vanilla {:.1}ms — materialization keeps\n\
         the tail down even when the autoscaler churns instances at fleet scale.",
        rows[0] as f64 / 1e3,
        rows[1] as f64 / 1e3
    );
    Ok(())
}
