//! Cold-start race: side-by-side stage timelines of all four strategies for
//! one model — an ASCII rendition of the paper's Figure 8.
//!
//! Run with: `cargo run --release --example cold_start_race [model]`

use medusa::{materialize_offline, ColdStart, ColdStartOptions, Stage, Strategy};
use medusa_gpu::{CostModel, GpuSpec, SimTime};
use medusa_model::ModelSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Qwen1.5-4B".to_string());
    let spec = ModelSpec::by_name(&model)
        .ok_or_else(|| format!("unknown model `{model}`; see ModelSpec::catalog()"))?;
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let (artifact, _) = materialize_offline(&spec, gpu.clone(), cost.clone(), 11)?;

    // Warm containers, as in the paper's trace experiments: the race is
    // about the loading phase.
    let opts = ColdStartOptions {
        seed: 12,
        warm_container: true,
        ..Default::default()
    };

    let mut reports = Vec::new();
    for strategy in Strategy::ALL {
        let mut builder = ColdStart::new(&spec)
            .strategy(strategy)
            .gpu(gpu.clone())
            .cost(cost.clone())
            .options(opts);
        if strategy == Strategy::Medusa {
            builder = builder.artifact(&artifact);
        }
        let (_, r) = builder.run()?.into_single();
        reports.push(r);
    }
    let horizon = reports
        .iter()
        .map(|r| r.loading.as_secs_f64())
        .fold(0.0f64, f64::max);

    const WIDTH: f64 = 64.0;
    let glyph = |s: Stage| match s {
        Stage::StructureInit => 'S',
        Stage::WeightsLoad => 'W',
        Stage::TokenizerLoad => 'T',
        Stage::KvCacheInit => 'K',
        Stage::Capture => 'C',
        _ => '?',
    };
    println!(
        "loading-phase race for {} (S=structure W=weights T=tokenizer K=kv-init C=capture)",
        spec.name()
    );
    println!("time axis: 0 .. {horizon:.2}s; lower lanes run concurrently with upper ones\n");
    for r in &reports {
        println!("{} — {:.3}s", r.strategy, r.loading.as_secs_f64());
        for span in &r.spans {
            if matches!(span.stage, Stage::RuntimeInit | Stage::FirstToken) {
                continue;
            }
            let from = ((span.start - SimTime::ZERO).as_secs_f64() / horizon * WIDTH) as usize;
            let to = (((span.end - SimTime::ZERO).as_secs_f64() / horizon * WIDTH) as usize)
                .max(from + 1);
            let mut lane = vec![' '; WIDTH as usize + 1];
            for c in lane.iter_mut().take(to).skip(from) {
                *c = glyph(span.stage);
            }
            println!(
                "  |{}| {:<14} {:.3}s",
                lane.iter().collect::<String>(),
                span.stage.to_string(),
                span.duration().as_secs_f64()
            );
        }
        println!();
    }
    println!("paper Fig. 8 (Qwen1.5 4B): vLLM 2.85s, vLLM+Async 2.48s, Medusa 1.67s");
    Ok(())
}
