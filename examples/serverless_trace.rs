//! Serverless trace replay: run a bursty ShareGPT-like workload through the
//! 4-GPU cluster simulator under all four strategies and report TTFT tails
//! (the paper's Figure 10 experiment at example scale).
//!
//! Run with: `cargo run --release --example serverless_trace [rps]`

use medusa::{materialize_offline, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{simulate, ClusterConfig, PerfModel};
use medusa_workload::TraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rps: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6.0);
    let spec = ModelSpec::by_name("Llama2-7B").expect("catalog model");
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();

    println!(
        "measuring per-strategy serving parameters for {} ...",
        spec.name()
    );
    let (artifact, _) = materialize_offline(&spec, gpu.clone(), cost.clone(), 7)?;
    let mut perfs = Vec::new();
    for strategy in Strategy::ALL {
        let art = (strategy == Strategy::Medusa).then_some(&artifact);
        let perf = PerfModel::measure(strategy, &spec, gpu.clone(), cost.clone(), art, 8)?;
        println!(
            "  {:<16} loading {:.3}s, decode@1 {:.2}ms, prefill@161 {:.2}ms",
            strategy.to_string(),
            perf.loading.as_secs_f64(),
            perf.decode_duration(1).as_millis_f64(),
            perf.prefill_duration(161).as_millis_f64()
        );
        perfs.push((strategy, perf));
    }

    let trace = TraceConfig::sharegpt(rps, 180.0).with_seed(99).generate();
    println!(
        "\nreplaying {} requests over 180s at {} rps on a 4-GPU cluster:",
        trace.len(),
        rps
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "strategy", "p50 TTFT", "p99 TTFT", "mean", "throughput", "cold starts"
    );
    for (strategy, perf) in &perfs {
        let r = simulate(perf, &ClusterConfig::default(), &trace);
        println!(
            "{:<16} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.2}qps {:>12}",
            strategy.to_string(),
            r.ttft_quantile(0.5).as_secs_f64(),
            r.ttft_quantile(0.99).as_secs_f64(),
            r.ttft_mean().as_secs_f64(),
            r.throughput(),
            r.cold_starts.len()
        );
    }
    println!("\npaper Fig. 10: Medusa cuts p99 TTFT by ~50-53% vs vLLM and beats w/o CUDA graph");
    Ok(())
}
