#!/usr/bin/env bash
# Local CI gate: formatting, lints, rustdoc, the full test suite, the
# event-core golden differential gate, the deterministic perf-smoke
# regression gates (per-instance cold start, single-tenant fleet, and the
# multi-tenant contended-cache scenario with its per-tenant p99
# invariant), the MAF2 artifact size sweep (byte-exact baseline, O(header)
# open, wall-clock speedup floor), the
# large-fleet scale smoke (wall-clock budget), every example end-to-end,
# the proptest regression-corpus check, and the concurrency stress test
# (sized for --release, hence run separately).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> proptest regression corpus (tracked and non-empty when present)"
# Convention (DESIGN.md): proptest failure persistence files are a shared
# regression corpus — when one exists it must be committed, and an empty
# file is a broken merge, not a corpus.
PROPTEST_FILES="$(find . -path ./target -prune -o -path ./.git -prune -o \
  \( -name '*.proptest-regressions' -o -path '*/proptest-regressions/*' \) \
  -type f -print)"
if [ -z "$PROPTEST_FILES" ]; then
  echo "    none present - OK"
else
  while IFS= read -r f; do
    if ! git ls-files --error-unmatch "$f" >/dev/null 2>&1; then
      echo "FAIL: $f is not tracked by git - commit the regression corpus"
      exit 1
    fi
    if [ ! -s "$f" ]; then
      echo "FAIL: $f is empty - delete it or commit the real regressions"
      exit 1
    fi
    echo "    $f - tracked, non-empty"
  done <<<"$PROPTEST_FILES"
fi

echo "==> deprecated carve-out (allow(deprecated) only in the core compat shims)"
FOUND="$(git grep -l 'allow(deprecated)' -- '*.rs' || true)"
BAD="$(echo "$FOUND" | grep -vx \
  -e crates/core/src/lib.rs \
  -e crates/core/src/pipeline.rs \
  -e crates/core/src/tp.rs || true)"
if [ -n "$BAD" ]; then
  echo "FAIL: allow(deprecated) outside the compat carve-out - migrate to the ColdStart builder:"
  echo "$BAD"
  exit 1
fi
echo "    carve-out respected"

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> event-core differential gate (golden ClusterReports)"
# Regenerate the seed x scheduler x fault matrix into a scratch dir and
# byte-diff against the committed oracle; any observable change to the
# fleet simulator's semantics must re-commit results/golden/ on purpose.
cargo run -q -p medusa-bench --bin ci-check-bench -- golden target/golden-check
if ! diff -ru results/golden target/golden-check >target/golden.diff; then
  echo "FAIL: event core diverged from committed golden reports:"
  cat target/golden.diff
  exit 1
fi
echo "    all golden reports byte-identical"

echo "==> fault-injection matrix (debug + release)"
cargo test -q --test faults
cargo test --release -q --test faults

echo "==> examples (release, end-to-end)"
cargo build --release -q --examples
for ex in examples/*.rs; do
  name="$(basename "$ex" .rs)"
  echo "    running example $name"
  cargo run --release -q --example "$name" >/dev/null
done

echo "==> perf smoke (simulated makespans vs committed baselines)"
mkdir -p target
cargo bench -q -p medusa-bench --bench micro -- --smoke \
  --out "$PWD/target/BENCH_coldstart.json" \
  --out-cluster "$PWD/target/BENCH_cluster.json" \
  --out-cluster-mt "$PWD/target/BENCH_cluster_multitenant.json"
cargo run -q -p medusa-bench --bin ci-check-bench -- \
  compare target/BENCH_coldstart.json results/BENCH_coldstart.json
cargo run -q -p medusa-bench --bin ci-check-bench -- \
  compare-cluster target/BENCH_cluster.json results/BENCH_cluster.json

echo "==> multi-tenant perf smoke (per-tenant p99 invariant + cache-hit floor)"
cargo run -q -p medusa-bench --bin ci-check-bench -- \
  compare-cluster target/BENCH_cluster_multitenant.json \
  results/BENCH_cluster_multitenant.json

echo "==> MAF2 artifact size sweep (release; byte-exact baseline + O(header) + speedup floor)"
# The sweep times JSON parse vs MAF2 open on this host, so it runs the
# release binary; the byte counts it gates are machine-independent.
cargo run --release -q -p medusa-bench --bin ci-check-bench -- \
  compare-artifact results/BENCH_artifact.json

echo "==> large-fleet scale smoke (release, wall-clock budget)"
cargo run --release -q -p medusa-bench --bin ci-check-bench -- scale-smoke --budget-s 120

echo "==> stress test (release)"
CORES="$(cargo run -q -p medusa-bench --bin ci-check-bench -- cores)"
if [ "$CORES" -lt 2 ]; then
  echo "SKIP: stress test needs >=2 cores to exercise real thread interleavings;"
  echo "      this host reports available_parallelism=$CORES."
else
  cargo test --release -q --test stress -- --include-ignored
fi

echo "CI OK"
