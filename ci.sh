#!/usr/bin/env bash
# Local CI gate: formatting, lints, rustdoc, the full test suite, the
# event-core golden differential gate, the deterministic perf-smoke
# regression gates (per-instance cold start, single-tenant fleet, and the
# multi-tenant contended-cache scenario with its per-tenant p99
# invariant), the MAF2 artifact size sweep (byte-exact baseline, O(header)
# open, wall-clock speedup floor), the
# large-fleet scale smoke (wall-clock budget), the predictive policy race
# (locality/prewarm/pipeline vs the reactive baseline), the
# content-addressed registry bench (chunk dedup vs whole-artifact
# fetches), every example end-to-end, the proptest regression-corpus
# check, and the concurrency stress test (sized for --release, hence run
# separately).
#
# `./ci.sh` runs everything; `./ci.sh --gate <name>` runs one simulator
# gate in isolation (as the CI matrix does), where <name> is one of:
#   golden | perf-smoke | mt-smoke | artifact | scale-smoke | policy-race |
#   registry
set -euo pipefail
cd "$(dirname "$0")"

GATES="golden perf-smoke mt-smoke artifact scale-smoke policy-race registry"

usage() {
  echo "usage: ./ci.sh [--gate <name>]"
  echo "gates: $GATES"
}

GATE="all"
case "${1:-}" in
"") ;;
--gate)
  GATE="${2:-}"
  if [ -z "$GATE" ]; then
    usage
    exit 2
  fi
  ;;
-h | --help)
  usage
  exit 0
  ;;
*)
  usage
  exit 2
  ;;
esac

prune_stale() {
  # Stale outputs from a previous run can mask a failure: a leftover
  # golden.diff or BENCH_*.json would be diffed/uploaded in place of
  # this run's output. Gates always start from a clean slate.
  mkdir -p target
  rm -rf target/golden-check
  rm -f target/golden.diff target/BENCH_*.json
}

run_bench_smoke() {
  # One bench invocation feeds both perf-smoke and mt-smoke; skip if a
  # prior gate in this run already produced the outputs (prune_stale
  # guarantees they are from this run, not a stale one).
  if [ ! -f target/BENCH_cluster_multitenant.json ]; then
    cargo bench -q -p medusa-bench --bench micro -- --smoke \
      --out "$PWD/target/BENCH_coldstart.json" \
      --out-cluster "$PWD/target/BENCH_cluster.json" \
      --out-cluster-mt "$PWD/target/BENCH_cluster_multitenant.json"
  fi
}

gate_golden() {
  echo "==> event-core differential gate (golden ClusterReports)"
  # Regenerate the seed x scheduler x fault matrix into a scratch dir and
  # byte-diff against the committed oracle; any observable change to the
  # fleet simulator's semantics must re-commit results/golden/ on purpose.
  cargo run -q -p medusa-bench --bin ci-check-bench -- golden target/golden-check
  if ! diff -ru results/golden target/golden-check >target/golden.diff; then
    echo "FAIL: event core diverged from committed golden reports:"
    cat target/golden.diff
    exit 1
  fi
  echo "    all golden reports byte-identical"
}

gate_perf_smoke() {
  echo "==> perf smoke (simulated makespans vs committed baselines)"
  run_bench_smoke
  cargo run -q -p medusa-bench --bin ci-check-bench -- \
    compare target/BENCH_coldstart.json results/BENCH_coldstart.json
  cargo run -q -p medusa-bench --bin ci-check-bench -- \
    compare-cluster target/BENCH_cluster.json results/BENCH_cluster.json
}

gate_mt_smoke() {
  echo "==> multi-tenant perf smoke (per-tenant p99 invariant + cache-hit floor)"
  run_bench_smoke
  cargo run -q -p medusa-bench --bin ci-check-bench -- \
    compare-cluster target/BENCH_cluster_multitenant.json \
    results/BENCH_cluster_multitenant.json
}

gate_artifact() {
  echo "==> MAF2 artifact size sweep (release; byte-exact baseline + O(header) + speedup floor)"
  # The sweep times JSON parse vs MAF2 open on this host, so it runs the
  # release binary; the byte counts it gates are machine-independent.
  cargo run --release -q -p medusa-bench --bin ci-check-bench -- \
    compare-artifact results/BENCH_artifact.json
}

gate_scale_smoke() {
  echo "==> large-fleet scale smoke (release, wall-clock budget)"
  cargo run --release -q -p medusa-bench --bin ci-check-bench -- scale-smoke --budget-s 120
}

gate_policy_race() {
  echo "==> policy race (predictive prewarm + locality + pipeline vs reactive baseline)"
  # Re-races the pinned policy matrix and gates TTFT percentiles, prewarm
  # waste, and the strict ordering invariants against the committed
  # baseline. The fresh race is written to target/ first so CI can upload
  # it as an artifact when the gate fails.
  cargo run --release -q -p medusa-bench --bin ci-check-bench -- \
    compare-policies results/BENCH_policies.json \
    --out "$PWD/target/BENCH_policies.json"
}

gate_registry() {
  echo "==> registry bench (content-addressed chunk fetches vs whole-artifact control)"
  # Re-packs the fine-tune family into the chunk store, replays the Zipf
  # fleet trace through both registry backends, and gates the byte-exact
  # counters, the >=2x fetch-byte and dedup floors, and TTFT parity
  # against the committed baseline. The fresh run is written to target/
  # first so CI can upload it as an artifact when the gate fails.
  cargo run --release -q -p medusa-bench --bin ci-check-bench -- \
    compare-registry results/BENCH_registry.json \
    --out "$PWD/target/BENCH_registry.json"
}

if [ "$GATE" != "all" ]; then
  case " $GATES " in
  *" $GATE "*) ;;
  *)
    echo "unknown gate: $GATE"
    usage
    exit 2
    ;;
  esac
  prune_stale
  SECONDS=0
  "gate_${GATE//-/_}"
  echo "CI OK (gate $GATE, ${SECONDS}s)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> proptest regression corpus (tracked and non-empty when present)"
# Convention (DESIGN.md): proptest failure persistence files are a shared
# regression corpus — when one exists it must be committed, and an empty
# file is a broken merge, not a corpus.
PROPTEST_FILES="$(find . -path ./target -prune -o -path ./.git -prune -o \
  \( -name '*.proptest-regressions' -o -path '*/proptest-regressions/*' \) \
  -type f -print)"
if [ -z "$PROPTEST_FILES" ]; then
  echo "    none present - OK"
else
  while IFS= read -r f; do
    if ! git ls-files --error-unmatch "$f" >/dev/null 2>&1; then
      echo "FAIL: $f is not tracked by git - commit the regression corpus"
      exit 1
    fi
    if [ ! -s "$f" ]; then
      echo "FAIL: $f is empty - delete it or commit the real regressions"
      exit 1
    fi
    echo "    $f - tracked, non-empty"
  done <<<"$PROPTEST_FILES"
fi

echo "==> deprecated carve-out (allow(deprecated) only in the core compat shims)"
FOUND="$(git grep -l 'allow(deprecated)' -- '*.rs' || true)"
BAD="$(echo "$FOUND" | grep -vx \
  -e crates/core/src/lib.rs \
  -e crates/core/src/pipeline.rs \
  -e crates/core/src/tp.rs \
  -e crates/serving/src/cluster.rs \
  -e crates/serving/src/lib.rs || true)"
if [ -n "$BAD" ]; then
  echo "FAIL: allow(deprecated) outside the compat carve-out - migrate off the deprecated names:"
  echo "$BAD"
  exit 1
fi
echo "    carve-out respected"

echo "==> cargo test (workspace)"
cargo test --workspace -q

prune_stale

gate_golden

echo "==> fault-injection matrix (debug + release)"
cargo test -q --test faults
cargo test --release -q --test faults

echo "==> examples (release, end-to-end)"
cargo build --release -q --examples
for ex in examples/*.rs; do
  name="$(basename "$ex" .rs)"
  echo "    running example $name"
  cargo run --release -q --example "$name" >/dev/null
done

gate_perf_smoke
gate_mt_smoke
gate_artifact
gate_scale_smoke
gate_policy_race
gate_registry

echo "==> stress test (release)"
CORES="$(cargo run -q -p medusa-bench --bin ci-check-bench -- cores)"
if [ "$CORES" -lt 2 ]; then
  echo "SKIP: stress test needs >=2 cores to exercise real thread interleavings;"
  echo "      this host reports available_parallelism=$CORES."
else
  cargo test --release -q --test stress -- --include-ignored
fi

echo "CI OK"
