#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and the
# concurrency stress test (sized for --release, hence run separately).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> stress test (release)"
cargo test --release -q --test stress -- --include-ignored

echo "CI OK"
