#!/usr/bin/env bash
# Local CI gate: formatting, lints, rustdoc, the full test suite, the
# deterministic perf-smoke regression gate, and the concurrency stress
# test (sized for --release, hence run separately).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> perf smoke (simulated makespans vs committed baseline)"
mkdir -p target
cargo bench -q -p medusa-bench --bench micro -- --smoke --out "$PWD/target/BENCH_coldstart.json"
cargo run -q -p medusa-bench --bin ci-check-bench -- \
  compare target/BENCH_coldstart.json results/BENCH_coldstart.json

echo "==> stress test (release)"
CORES="$(cargo run -q -p medusa-bench --bin ci-check-bench -- cores)"
if [ "$CORES" -lt 2 ]; then
  echo "SKIP: stress test needs >=2 cores to exercise real thread interleavings;"
  echo "      this host reports available_parallelism=$CORES."
else
  cargo test --release -q --test stress -- --include-ignored
fi

echo "CI OK"
