//! Vendored, dependency-free stand-in for `serde`.
//!
//! The workspace only needs derived `Serialize`/`Deserialize` and JSON
//! round-trips through `serde_json::{to_string, from_str}`, so this crate
//! models serialization as conversion to and from a small [`Value`] tree.
//! Numbers keep their exact source literal (`Num(String)`) so integer and
//! float round-trips are lossless. The derive macros live in the sibling
//! `serde_derive` crate and are re-exported here, exactly like the real
//! crate layout, so `use serde::{Deserialize, Serialize}` keeps working.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the intermediate form between Rust values
/// and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number, kept as its exact literal for lossless round-trips.
    Num(String),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------------
// Helpers used by the derive expansion (public, hidden from docs).

/// Fetches a required struct field out of a map value.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not a map or lacks `key`.
#[doc(hidden)]
pub fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Map(_) => v
            .get(key)
            .ok_or_else(|| Error(format!("missing field `{key}` while decoding {ctx}"))),
        other => Err(Error(format!(
            "expected map for {ctx}, got {}",
            kind(other)
        ))),
    }
}

/// Fetches a fixed-arity sequence out of a value.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not a sequence of exactly `n` elements.
#[doc(hidden)]
pub fn seq_n<'v>(v: &'v Value, n: usize, ctx: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error(format!(
            "expected {n} elements for {ctx}, got {}",
            items.len()
        ))),
        other => Err(Error(format!(
            "expected sequence for {ctx}, got {}",
            kind(other)
        ))),
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

// ------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error(format!("invalid {}: `{s}` ({e})", stringify!($t)))
                    }),
                    other => Err(Error(format!(
                        "expected {}, got {}", stringify!($t), kind(other)
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // `{:?}` prints the shortest literal that round-trips.
                Value::Num(format!("{:?}", self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error(format!("invalid {}: `{s}` ({e})", stringify!($t)))
                    }),
                    other => Err(Error(format!(
                        "expected {}, got {}", stringify!($t), kind(other)
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", kind(other)))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", kind(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!(
                "expected single-char string, got {}",
                kind(other)
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {}", kind(other)))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = seq_n(v, N, "fixed-size array")?;
        let decoded: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        decoded
            .try_into()
            .map_err(|_| Error("array length mismatch".to_string()))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = seq_n(v, 2, "2-tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = seq_n(v, 3, "3-tuple")?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted keys: derived artifacts must serialize deterministically.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error(format!("expected map, got {}", kind(other)))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        let x = 0.1f64 + 0.2;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        match m.to_value() {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn array_round_trip() {
        let digest = [7u8; 16];
        assert_eq!(<[u8; 16]>::from_value(&digest.to_value()).unwrap(), digest);
    }
}
