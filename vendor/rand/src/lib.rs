//! Vendored, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: `SmallRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`
//! and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is all the simulated stack
//! needs (the real `rand` makes no cross-version stability promise anyway,
//! so the workspace pins its distributions here).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Full-width range (e.g. 0..=MAX expressed as wrapping span 0).
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value inside `range` (half-open).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
