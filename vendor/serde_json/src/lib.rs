//! Vendored, dependency-free stand-in for `serde_json`: exactly the
//! `to_string` / `from_str` pair this workspace uses, implemented over the
//! `serde` stub's `Value` tree.
//!
//! Number literals pass through verbatim in both directions (the `Value`
//! tree stores them as strings), so `u64::MAX` and every `f64` that Rust
//! can print round-trip losslessly.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error (re-used from the serde stub).
pub type Error = serde::Error;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the stub's `Value` tree; kept fallible to match the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

// ------------------------------------------------------------------
// Writer.

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------
// Parser (recursive descent).

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        // Validate the literal parses as a Rust float; keep it verbatim.
        text.parse::<f64>()
            .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
        Ok(Value::Num(text.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair: expect the low half next.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::new("invalid \\u escape"))?;
                                self.pos += 4;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Copy the contiguous run up to the next quote or escape
                    // in one go (UTF-8-safe: the delimiters are ASCII bytes,
                    // which never occur inside a multi-byte sequence).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn round_trip_escapes_and_unicode() {
        let v = Value::Str("a\"b\\c\nd\tπ❤".to_string());
        let json = to_string(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn round_trip_numbers() {
        for json in [
            "0",
            "-7",
            "18446744073709551615",
            "0.25",
            "1e300",
            "-2.5e-3",
        ] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn nested_shapes() {
        let json = r#"{"a":[1,{"b":null}],"c":true}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }
}
