//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Implements the exact surface the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! `prop_assert!`/`prop_assert_eq!`, integer/float range strategies,
//! `any::<T>()`, tuple and array strategies, `prop::collection::vec`, and
//! a tiny `\PC{m,n}`-style string strategy.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the generated inputs still bound, and cases are derived
//! deterministically from the test name, so failures reproduce exactly on
//! every run and every machine.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, perturbed by the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64() as f32
    }
}

/// Strategy adapter produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy for an arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String strategy from a miniature pattern language: an optional char
/// class (`\PC` — any printable char — is the only class supported)
/// followed by a `{min,max}` repetition. A bare literal pattern generates
/// itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const PRINTABLE: &[char] = &[
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', '0', '1',
            '2', '3', '4', '5', '6', '7', '8', '9', ' ', '.', ',', '!', '?', '-', '_', '/', ':',
            '"', '\\', '{', '}', 'é', 'ß', 'π', 'λ', '中', '語', '❤', '🚀',
        ];
        let Some(class_end) = self.find('{') else {
            return (*self).to_string();
        };
        let (class, rep) = self.split_at(class_end);
        assert!(
            class == "\\PC" || class == "\\\\PC",
            "string strategy: unsupported pattern `{self}` (only \\PC{{m,n}})"
        );
        let rep = rep
            .trim_start_matches('{')
            .trim_end_matches('}')
            .split_once(',')
            .expect("string strategy: expected `{min,max}` repetition");
        let (min, max): (usize, usize) = (rep.0.parse().expect("min"), rep.1.parse().expect("max"));
        let len = min + (rng.next_u64() as usize) % (max - min + 1);
        (0..len)
            .map(|_| PRINTABLE[(rng.next_u64() as usize) % PRINTABLE.len()])
            .collect()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: `len` elements (half-open range) drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Runner-facing types referenced by generated test bodies.
pub mod test_runner {
    /// A test-case failure carrying a message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-style function running `config.cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property `{}` case {} failed: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, f in 1.0f64..2.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn early_return_is_allowed(flag in any::<bool>(), _x in any::<u64>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_parses(pair in (0u32..4, any::<bool>()), arr in [any::<u16>(), any::<u16>()]) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(arr.len(), 2);
        }
    }

    #[test]
    fn string_pattern_generates_bounded_strings() {
        let mut rng = crate::TestRng::for_case("strings", 0);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = crate::TestRng::for_case("t", 3).next_u64();
        let b = crate::TestRng::for_case("t", 3).next_u64();
        let c = crate::TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
