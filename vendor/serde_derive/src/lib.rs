//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! sibling `serde` stub's `Value` tree. The parser walks the raw
//! `proc_macro::TokenStream` by hand (no `syn`/`quote` — the build must
//! work fully offline), covering exactly the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. `#[serde(...)]` attributes are not
//! supported and generics are rejected with a clear panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` (stub): conversion into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stub derive produced invalid Rust")
}

/// Derives `serde::Deserialize` (stub): conversion out of a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stub derive produced invalid Rust")
}

// ------------------------------------------------------------------
// Parsing.

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter();
    while let Some(tt) = toks.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // the `[...]` attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let is_enum = id.to_string() == "enum";
                let name = match toks.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde stub derive: expected type name, got {other:?}"),
                };
                let kind = match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde stub derive: generic type `{name}` is not supported")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        if is_enum {
                            Kind::Enum(parse_variants(g.stream()))
                        } else {
                            Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Kind::Struct(Fields::Tuple(count_top_level_fields(g.stream())))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
                    other => {
                        panic!("serde stub derive: unexpected token after `{name}`: {other:?}")
                    }
                };
                return Input { name, kind };
            }
            // Visibility keywords, `pub(crate)` groups, etc.: skip.
            _ => {}
        }
    }
    panic!("serde stub derive: no struct or enum found in input")
}

/// Counts comma-separated fields at the top level of a tuple body,
/// treating commas inside generic angle brackets as nested.
fn count_top_level_fields(ts: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tt in ts {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    fields += 1;
                    pending = false;
                }
            }
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut toks = ts.into_iter().peekable();
    'fields: loop {
        // Skip attributes (including doc comments) and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            None => break 'fields,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in toks.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        out.push(name);
    }
    out
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let mut out = Vec::new();
    let mut toks = ts.into_iter().peekable();
    loop {
        // Skip attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                Fields::Tuple(count_top_level_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for tt in toks.by_ref() {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        out.push((name, fields));
    }
    out
}

// ------------------------------------------------------------------
// Code generation (as source text, then re-parsed into a TokenStream).

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: <_ as ::serde::Deserialize>::from_value(\
                         ::serde::field(v, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(<_ as ::serde::Deserialize>::from_value(v)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::seq_n(v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         <_ as ::serde::Deserialize>::from_value(_inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?")
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ \
                             let items = ::serde::seq_n(_inner, {n}, \"{name}::{v}\")?; \
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            inits.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: <_ as ::serde::Deserialize>::from_value(\
                                     ::serde::field(_inner, \"{f}\", \"{name}::{v}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (_tag, _inner) = &entries[0];\n\
                         match _tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error::new(\
                         \"expected enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
