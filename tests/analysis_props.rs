//! Property-based end-to-end check of the materialization pipeline: for
//! *randomized* allocation/free/launch programs, the artifact produced by
//! the analysis stage must restore in a fresh process (different ASLR,
//! different allocator jitter) to a graph whose replay writes exactly the
//! same buffer contents as the original captured graph.
//!
//! This is the paper's core correctness claim (§4) quantified over the
//! space of control flows, not just the LLM schedule.

use medusa::{
    analyze, count_naive_mismatches, replay_allocations, restore_graph, CaptureOutput, GraphWindow,
    KernelInfo, ParamSpec,
};
use medusa_gpu::{
    AllocTag, CostClass, CostModel, DevicePtr, Digest, DigestState, GpuSpec, KernelDef, KernelSig,
    LibraryCatalog, LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
};
use medusa_graph::{capture_graph, GraphExec};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const LIB: &str = "libprop.so";

fn catalog() -> Arc<LibraryCatalog> {
    use ParamKind::*;
    LibraryCatalog::new(vec![LibrarySpec::new(
        LIB,
        false,
        vec![ModuleSpec::new(
            "ops",
            vec![
                KernelDef::new(
                    "copy2",
                    true,
                    KernelSig::new(vec![PtrIn, PtrOut]),
                    CostClass::MemoryBound,
                ),
                KernelDef::new(
                    "mix3",
                    true,
                    KernelSig::new(vec![PtrIn, PtrIn, PtrOut]),
                    CostClass::MemoryBound,
                ),
                KernelDef::new(
                    "scaled",
                    true,
                    KernelSig::new(vec![PtrIn, Scalar4, PtrOut, Scalar8]),
                    CostClass::ComputeBound,
                ),
            ],
        )],
    )])
}

/// A randomized control-flow program, interpreted identically in the
/// offline and online processes (Medusa's determinism premise).
#[derive(Debug, Clone)]
struct Program {
    /// Sizes of the natural-prefix ("structure init") allocations.
    prefix_sizes: Vec<u64>,
    /// Phase-B ops: `Alloc(size_units)` or `Free(live_index_pick)`.
    phase_b: Vec<(bool, u64)>,
    /// Captured launches: (kernel pick, param picks).
    launches: Vec<(u8, [u64; 3])>,
}

fn prefix_digest(i: usize) -> Digest {
    let mut d = DigestState::new("prefix_content");
    d.absorb_u64(i as u64);
    d.finish()
}

fn phase_b_digest(i: usize) -> Digest {
    let mut d = DigestState::new("phase_b_content");
    d.absorb_u64(i as u64);
    d.finish()
}

struct OfflineResult {
    artifact: medusa::MaterializedState,
    /// Digest of every output param's buffer after replaying the captured
    /// graph offline, keyed by (node, param).
    reference: HashMap<(usize, usize), Digest>,
    prefix_count: usize,
    /// Seqs of allocations live at capture time (nothing is freed after).
    live_seqs: HashSet<u64>,
    /// How many captured pointers naive whole-history address matching
    /// would bind to the wrong allocation (the Fig. 6 hazard count).
    naive_mismatches: u64,
}

/// Runs the program offline: record, capture, analyze, and self-replay for
/// reference outputs. Returns `None` when the random program degenerates
/// (no live buffers to launch over).
fn offline(p: &Program, seed: u64) -> Option<OfflineResult> {
    let mut rt = ProcessRuntime::new(
        catalog(),
        GpuSpec::new("prop-gpu", 1 << 30),
        CostModel::default(),
        seed,
    );
    rt.enable_tracing();
    rt.dlopen(LIB).unwrap();
    let kaddrs: Vec<u64> = ["copy2", "mix3", "scaled"]
        .iter()
        .map(|n| {
            rt.kernel_address(rt.catalog().find_kernel(LIB, n).unwrap())
                .unwrap()
        })
        .collect();

    // Natural prefix.
    let mut prefix_ptrs = Vec::new();
    for (i, &size) in p.prefix_sizes.iter().enumerate() {
        let ptr = rt.cuda_malloc(size, AllocTag::Weights).unwrap();
        rt.memory_mut()
            .write_digest(ptr.addr(), prefix_digest(i))
            .unwrap();
        prefix_ptrs.push(ptr);
    }
    let replay_start_pos = rt.trace_len();
    let stage_start_pos = rt.trace_len();

    // Phase B: allocation churn.
    let mut live: Vec<DevicePtr> = prefix_ptrs.clone();
    let prefix_count = prefix_ptrs.len();
    let mut b_alloc_counter = 0usize;
    for &(is_alloc, v) in &p.phase_b {
        if is_alloc || live.len() <= prefix_count {
            let size = 256 * (1 + v % 8);
            let ptr = rt.cuda_malloc(size, AllocTag::Activation).unwrap();
            rt.memory_mut()
                .write_digest(ptr.addr(), phase_b_digest(b_alloc_counter))
                .unwrap();
            b_alloc_counter += 1;
            live.push(ptr);
        } else {
            // Free a non-prefix live buffer.
            let idx = prefix_count + (v as usize % (live.len() - prefix_count));
            let ptr = live.swap_remove(idx);
            rt.cuda_free(ptr).unwrap();
        }
    }
    if live.is_empty() {
        return None;
    }

    // Warm-up (module load) on a dedicated scratch buffer so it does not
    // mutate any state the captured graph reads (the real flow's warm-up
    // writes the persistent workspace, which serving rewrites per step).
    let pick = |arr: &[DevicePtr], v: u64| arr[v as usize % arr.len()];
    let warmup_scratch = rt.cuda_malloc(256, AllocTag::Workspace).unwrap();
    rt.memory_mut()
        .write_digest(warmup_scratch.addr(), [0xaa; 16])
        .unwrap();
    rt.launch_kernel(
        kaddrs[0],
        &[warmup_scratch.addr(), warmup_scratch.addr()],
        Work::NONE,
        0,
    )
    .unwrap();
    let trace_start = rt.trace_len();
    let live_c = live.clone();
    let launches = p.launches.clone();
    let kaddrs_c = kaddrs.clone();
    let graph = capture_graph(&mut rt, 0, move |rt| {
        for &(k, picks) in &launches {
            match k % 3 {
                0 => rt.launch_kernel(
                    kaddrs_c[0],
                    &[
                        pick(&live_c, picks[0]).addr(),
                        pick(&live_c, picks[1]).addr(),
                    ],
                    Work::NONE,
                    0,
                )?,
                1 => rt.launch_kernel(
                    kaddrs_c[1],
                    &[
                        pick(&live_c, picks[0]).addr(),
                        pick(&live_c, picks[1]).addr(),
                        pick(&live_c, picks[2]).addr(),
                    ],
                    Work::NONE,
                    0,
                )?,
                _ => rt.launch_kernel(
                    kaddrs_c[2],
                    &[
                        pick(&live_c, picks[0]).addr(),
                        picks[1] & 0xffff_ffff,
                        pick(&live_c, picks[2]).addr(),
                        picks[1],
                    ],
                    Work::NONE,
                    0,
                )?,
            }
        }
        Ok(())
    })
    .unwrap();
    let trace_end = rt.trace_len();
    let capture_end_pos = rt.trace_len();

    // Kernel identities + final contents snapshot.
    let mut kernel_info = HashMap::new();
    for (addr, name) in kaddrs.iter().zip(["copy2", "mix3", "scaled"]) {
        kernel_info.insert(
            *addr,
            KernelInfo {
                name: name.to_string(),
                library: LIB.into(),
                exported: true,
            },
        );
    }
    let mut final_contents = HashMap::new();
    let snapshot: Vec<(u64, u64)> = rt
        .memory()
        .iter()
        .map(|a| (a.seq(), a.base().addr()))
        .collect();
    let live_seqs: HashSet<u64> = snapshot.iter().map(|&(sq, _)| sq).collect();
    for (sq, addr) in snapshot {
        final_contents.insert(sq, rt.memory().read_digest(addr).unwrap());
    }

    let capture = CaptureOutput {
        model: "prop".into(),
        gpu: "prop-gpu".into(),
        rank: 0,
        tp: 1,
        trace: rt.take_trace(),
        replay_start_pos,
        stage_start_pos,
        capture_end_pos,
        windows: vec![GraphWindow {
            batch: 1,
            trace_start,
            trace_end,
            graph: graph.clone(),
        }],
        kernel_info,
        final_contents,
        final_ptr_tables: HashMap::new(),
        kv_free_bytes: 0,
        labels: HashMap::new(),
        duration: medusa_gpu::SimDuration::ZERO,
    };
    let naive_mismatches = count_naive_mismatches(&capture);
    let artifact = analyze(&capture, &CostModel::default()).unwrap().state;

    // Reference: self-replay the captured graph offline and read every
    // output parameter's buffer digest.
    let exec = GraphExec::instantiate(&mut rt, graph).unwrap();
    exec.launch(&mut rt, 0).unwrap();
    rt.device_synchronize().unwrap();
    let mut reference = HashMap::new();
    for (ni, node) in exec.graph().iter().enumerate() {
        for pi in 0..node.params().param_count() {
            if node.params().size_of(pi) == 8 {
                let addr = node.params().value(pi);
                if let Ok(d) = rt.memory().read_digest(addr) {
                    reference.insert((ni, pi), d);
                }
            }
        }
    }
    Some(OfflineResult {
        artifact,
        reference,
        prefix_count,
        live_seqs,
        naive_mismatches,
    })
}

/// Restores the artifact in a fresh process and replays; returns per-param
/// buffer digests for comparison.
fn online(p: &Program, r: &OfflineResult, seed: u64) -> HashMap<(usize, usize), Digest> {
    let mut rt = ProcessRuntime::new(
        catalog(),
        GpuSpec::new("prop-gpu", 1 << 30),
        CostModel::default(),
        seed,
    );
    // Natural prefix with identical control flow + contents (the "weights
    // loading" equivalent).
    for (i, &size) in p.prefix_sizes.iter().enumerate() {
        let ptr = rt.cuda_malloc(size, AllocTag::Weights).unwrap();
        rt.memory_mut()
            .write_digest(ptr.addr(), prefix_digest(i))
            .unwrap();
    }
    assert_eq!(r.prefix_count, p.prefix_sizes.len());
    let (layout, _) = replay_allocations(&mut rt, &r.artifact).unwrap();
    let mut resolver = medusa::KernelResolver::new();
    resolver.resolve_exported(&mut rt, &r.artifact).unwrap();
    resolver.ensure_complete(&r.artifact).unwrap();
    let graph = restore_graph(&r.artifact.graphs[0], &layout, resolver.addrs()).unwrap();
    let exec = GraphExec::instantiate(&mut rt, graph).unwrap();
    exec.launch(&mut rt, 0).unwrap();
    rt.device_synchronize().unwrap();
    let mut out = HashMap::new();
    for (ni, node) in exec.graph().iter().enumerate() {
        for pi in 0..node.params().param_count() {
            if node.params().size_of(pi) == 8 {
                let addr = node.params().value(pi);
                if let Ok(d) = rt.memory().read_digest(addr) {
                    out.insert((ni, pi), d);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random control flow materializes and restores to identical
    /// observable buffer contents across processes.
    #[test]
    fn randomized_programs_roundtrip(
        prefix_sizes in prop::collection::vec(256u64..4096, 1..4),
        phase_b in prop::collection::vec((any::<bool>(), any::<u64>()), 0..12),
        launches in prop::collection::vec((any::<u8>(), [any::<u64>(), any::<u64>(), any::<u64>()]), 1..6),
        offline_seed in 0u64..1000,
        online_seed in 1000u64..2000,
    ) {
        let program = Program { prefix_sizes, phase_b, launches };
        let Some(result) = offline(&program, offline_seed) else {
            return Ok(());
        };
        prop_assert_eq!(
            result.artifact.graphs[0].nodes.len(),
            program.launches.len()
        );
        let restored = online(&program, &result, online_seed);
        prop_assert_eq!(restored.len(), result.reference.len());
        for (key, digest) in &result.reference {
            prop_assert_eq!(
                restored.get(key),
                Some(digest),
                "buffer contents diverged at node/param {:?}",
                key
            );
        }
    }

    /// §4.1: trace-based indirect-pointer matching never binds a captured
    /// kernel pointer to a freed allocation, even under allocator churn
    /// engineered so freed addresses get recycled for new buffers (the
    /// failure mode of naive whole-history address matching, Fig. 6).
    #[test]
    fn reuse_churn_never_resolves_to_freed_allocations(
        prefix_sizes in prop::collection::vec(256u64..1024, 1..3),
        churn in prop::collection::vec(any::<u64>(), 4..16),
        launches in prop::collection::vec((any::<u8>(), [any::<u64>(), any::<u64>(), any::<u64>()]), 1..6),
        offline_seed in 0u64..1000,
        online_seed in 1000u64..2000,
    ) {
        // Single 256-byte size class: seed a few buffers, then alternate
        // free/alloc so every new allocation is a free-list reuse candidate
        // for an address a captured-era pointer could stale-match.
        let mut phase_b = vec![(true, 0u64); 3];
        for &v in &churn {
            phase_b.push((false, v));
            phase_b.push((true, 0));
        }
        let program = Program { prefix_sizes, phase_b, launches };
        let result = offline(&program, offline_seed).expect("churn keeps live buffers");
        for (ni, node) in result.artifact.graphs[0].nodes.iter().enumerate() {
            for (pi, param) in node.params.iter().enumerate() {
                if let ParamSpec::IndirectPtr { alloc_seq, .. } = param {
                    prop_assert!(
                        result.live_seqs.contains(alloc_seq),
                        "node {} param {} bound to freed allocation seq {}",
                        ni,
                        pi,
                        alloc_seq
                    );
                }
            }
        }
        let restored = online(&program, &result, online_seed);
        for (key, digest) in &result.reference {
            prop_assert_eq!(restored.get(key), Some(digest));
        }
    }
}

/// Deterministic regression for the paper's Fig. 6 hazard: allocation A is
/// freed, allocation B recycles A's device address, and a captured kernel
/// reads B. Naive first-match binds the pointer to A (history order);
/// trace-based matching must bind it to B, and the artifact must restore
/// to B's contents in a fresh process.
#[test]
fn fig6_address_reuse_binds_to_live_allocation() {
    let program = Program {
        prefix_sizes: vec![512],
        // Alloc A (256 B), free A, alloc B (256 B): the allocator's
        // size-class free list hands B the address A vacated (modulo
        // seeded reuse jitter, hence the seed scan below).
        phase_b: vec![(true, 0), (false, 0), (true, 0)],
        // copy2(B -> prefix buffer): the captured pointer at risk is B's.
        launches: vec![(0, [1, 0, 0])],
    };
    let mut hazard_seen = false;
    for seed in 0..64 {
        let r = offline(&program, seed).expect("program is non-degenerate");
        // Whether or not reuse fired under this seed, the artifact must
        // only ever reference live-at-capture allocations.
        for node in &r.artifact.graphs[0].nodes {
            for param in &node.params {
                if let ParamSpec::IndirectPtr { alloc_seq, .. } = param {
                    assert!(
                        r.live_seqs.contains(alloc_seq),
                        "seed {seed}: pointer bound to freed allocation seq {alloc_seq}"
                    );
                }
            }
        }
        if r.naive_mismatches > 0 {
            // Reuse fired: naive matching would have corrupted this graph.
            // The trace-matched artifact must still roundtrip exactly.
            hazard_seen = true;
            let restored = online(&program, &r, 7_000 + seed);
            assert_eq!(restored.len(), r.reference.len());
            for (key, digest) in &r.reference {
                assert_eq!(
                    restored.get(key),
                    Some(digest),
                    "seed {seed}: hazard-case restore diverged at {key:?}"
                );
            }
        }
    }
    assert!(
        hazard_seen,
        "no seed in 0..64 produced address reuse — the regression lost its teeth"
    );
}
