//! Differential + property harness locking in the event-driven fleet core.
//!
//! Two layers of defense:
//!
//! 1. **Differential gate** — every scenario of the pinned seed ×
//!    scheduler × fault matrix ([`medusa_serving::scenarios`]) replays
//!    through the event core and must produce a `ClusterReport` that is
//!    **byte-identical** to the golden JSON committed under
//!    `results/golden/` *before* the refactor. The goldens encode the
//!    legacy stepping semantics; any observable divergence (event
//!    ordering, autoscaler decisions, fault derivation, metric
//!    accounting) fails with a readable diff.
//! 2. **Queue properties** — randomized schedules against
//!    [`EventQueue`] pin the determinism rules everything above relies
//!    on: pops never go back in time, same-timestamp events pop in
//!    insertion (FIFO) order, cancelled events never fire, and for
//!    distinct timestamps the pop sequence is independent of insertion
//!    order.
//!
//! Regenerate goldens (only after an *intentional* semantic change) with
//! `cargo run --release -p medusa-bench --bin ci-check-bench -- golden
//! results/golden`.

use medusa_serving::scenarios::differential_matrix;
use medusa_serving::{simulate_fleet, EventQueue};
use proptest::prelude::*;
use std::path::Path;

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden"))
}

/// The differential gate: event core vs committed legacy reports, across
/// the full seed × scheduler × fault matrix.
#[test]
fn event_core_reports_match_golden_legacy_reports() {
    let matrix = differential_matrix();
    assert!(
        matrix.len() >= 20,
        "differential matrix unexpectedly small ({} scenarios)",
        matrix.len()
    );
    for s in &matrix {
        let path = golden_dir().join(format!("{}.json", s.name));
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden report {} ({e}); regenerate with \
                 `ci-check-bench golden results/golden`",
                path.display()
            )
        });
        let out = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        let mut got = out.report.to_json();
        got.push('\n');
        assert_eq!(
            got, want,
            "scenario `{}`: event core diverged from the pre-refactor \
             legacy report",
            s.name
        );
        assert_eq!(
            out.conservation_residual(),
            0,
            "scenario `{}`: requests leaked",
            s.name
        );
    }
}

/// Every committed golden corresponds to a live scenario — a renamed or
/// deleted scenario must retire its golden, not orphan it.
#[test]
fn no_orphaned_golden_reports() {
    let names: Vec<String> = differential_matrix()
        .iter()
        .map(|s| format!("{}.json", s.name))
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("results/golden must exist") {
        let file = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            names.iter().any(|n| n == &file),
            "orphaned golden report `{file}` has no matrix scenario"
        );
    }
}

/// Same seed, same config ⇒ byte-identical report *and* identical event
/// counts, run to run.
#[test]
fn same_seed_runs_are_byte_identical() {
    let matrix = differential_matrix();
    for s in matrix.iter().take(4) {
        let a = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        let b = simulate_fleet(&s.profile, &s.cluster, s.policy, &s.trace);
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "scenario `{}`",
            s.name
        );
        assert_eq!(a.stats, b.stats, "scenario `{}`", s.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops never run backwards in simulated time, and every scheduled
    /// event fires exactly once.
    #[test]
    fn pops_never_out_of_timestamp_order(
        times in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut fired = vec![false; times.len()];
        let mut prev = 0u64;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= prev, "time ran backwards: {t} after {prev}");
            prop_assert_eq!(t, times[i], "event fired at the wrong time");
            prop_assert!(!fired[i], "event {i} fired twice");
            fired[i] = true;
            prev = t;
        }
        prop_assert!(fired.iter().all(|&f| f), "some events never fired");
    }

    /// Ties on timestamp break by insertion order, regardless of how many
    /// distinct timestamps interleave between the ties.
    #[test]
    fn same_timestamp_pops_in_insertion_order(
        times in prop::collection::vec(0u64..16, 1..200),
    ) {
        // A coarse time range forces many collisions per case.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_at: Vec<Option<usize>> = vec![None; 16];
        while let Some((t, i)) = q.pop() {
            if let Some(prev) = last_at[t as usize] {
                prop_assert!(
                    i > prev,
                    "tie at t={t} popped out of insertion order: {i} after {prev}"
                );
            }
            last_at[t as usize] = Some(i);
        }
    }

    /// A cancelled event never fires, never perturbs the order of the
    /// survivors, and the queue's accounting stays exact.
    #[test]
    fn cancelled_events_never_fire(
        plan in prop::collection::vec((0u64..64, any::<bool>()), 1..150),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = plan
            .iter()
            .enumerate()
            .map(|(i, &(t, _))| q.schedule(t, i))
            .collect();
        let mut cancelled = 0u64;
        for (i, &(_, cancel)) in plan.iter().enumerate() {
            if cancel {
                prop_assert!(q.cancel(tokens[i]), "pending event must be cancellable");
                prop_assert!(!q.cancel(tokens[i]), "double-cancel must be a no-op");
                cancelled += 1;
            }
        }
        prop_assert_eq!(q.len(), plan.len() - cancelled as usize);
        // Survivors pop in exactly the order a queue without the
        // cancelled events would have produced.
        let mut reference = EventQueue::new();
        for (i, &(t, cancel)) in plan.iter().enumerate() {
            if !cancel {
                reference.schedule(t, i);
            }
        }
        while let Some((t, i)) = q.pop() {
            prop_assert!(!plan[i].1, "cancelled event {i} fired");
            prop_assert_eq!(Some((t, i)), reference.pop());
        }
        prop_assert_eq!(reference.pop(), None);
        prop_assert_eq!(q.scheduled_total(), plan.len() as u64);
        prop_assert_eq!(q.cancelled_total(), cancelled);
    }

    /// For distinct timestamps the pop sequence is a pure function of the
    /// (time, payload) set — shuffling insertion order changes nothing.
    #[test]
    fn distinct_time_pop_order_is_insertion_invariant(
        raw in prop::collection::vec(0u64..1_000_000, 1..150),
        rot in any::<u64>(),
    ) {
        // Dedup to distinct timestamps, then compare natural insertion
        // order against a rotated (shuffled) insertion order.
        let mut times = raw;
        times.sort_unstable();
        times.dedup();
        let rot = (rot % times.len() as u64) as usize;
        let mut fwd = EventQueue::new();
        for &t in &times {
            fwd.schedule(t, t);
        }
        let mut shuffled = EventQueue::new();
        for k in 0..times.len() {
            let t = times[(k + rot) % times.len()];
            shuffled.schedule(t, t);
        }
        let mut rev = EventQueue::new();
        for &t in times.iter().rev() {
            rev.schedule(t, t);
        }
        loop {
            let a = fwd.pop();
            prop_assert_eq!(a, shuffled.pop());
            prop_assert_eq!(a, rev.pop());
            if a.is_none() {
                break;
            }
        }
    }
}
