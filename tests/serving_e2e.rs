//! End-to-end serving experiments at test scale: the Figure 10/11 shape on
//! a small model — Medusa must dominate the TTFT tail under bursty load.

use medusa::{materialize_offline, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_serving::{simulate, ClusterConfig, PerfModel, SimResult};
use medusa_workload::TraceConfig;

fn perf_for(strategy: Strategy) -> PerfModel {
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    let art = match strategy {
        Strategy::Medusa => Some(
            materialize_offline(&spec, GpuSpec::a100_40gb(), CostModel::default(), 71)
                .expect("offline")
                .0,
        ),
        _ => None,
    };
    PerfModel::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        art.as_ref(),
        72,
    )
    .expect("measure")
}

fn run(strategy: Strategy, rps: f64) -> SimResult {
    let trace = TraceConfig::sharegpt(rps, 90.0).with_seed(5).generate();
    simulate(&perf_for(strategy), &ClusterConfig::default(), &trace)
}

/// Figure 10 shape: Medusa's p99 TTFT beats every baseline at both load
/// levels, and all requests complete.
#[test]
fn medusa_dominates_p99_ttft() {
    for rps in [2.0, 8.0] {
        let vanilla = run(Strategy::Vanilla, rps);
        let asynch = run(Strategy::VanillaAsync, rps);
        let medusa = run(Strategy::Medusa, rps);
        let m = medusa.ttft_quantile(0.99);
        assert!(
            m < asynch.ttft_quantile(0.99) && m < vanilla.ttft_quantile(0.99),
            "medusa p99 {m} must be lowest at {rps} rps"
        );
        assert!(
            asynch.ttft_quantile(0.99) < vanilla.ttft_quantile(0.99),
            "async must beat vanilla"
        );
        assert_eq!(medusa.completed, medusa.offered, "no request may be lost");
    }
}

/// Figure 11 shape: the w/o-CUDA-graph strategy trades cold-start time for
/// permanently slower serving — at saturating load its achieved throughput
/// falls behind the graph-based strategies.
#[test]
fn no_graph_throughput_saturates_earlier() {
    let rps = 40.0;
    let with_graph = run(Strategy::Medusa, rps);
    let without = run(Strategy::NoCudaGraph, rps);
    assert!(
        with_graph.throughput() > without.throughput() * 1.1,
        "graphs must buy throughput: {} vs {}",
        with_graph.throughput(),
        without.throughput()
    );
}

/// TTFT grows with offered load for every strategy (queueing). The mean is
/// the robust comparison: at trickle load the p99 is just the one request
/// that paid the initial cold start. Medusa's materialized cold start is
/// small enough that both operating points are effectively warm, so a
/// sub-percent tolerance absorbs queueing noise while still catching any
/// real inversion.
#[test]
fn ttft_grows_with_load() {
    for strategy in [Strategy::Vanilla, Strategy::Medusa] {
        let low = run(strategy, 1.0);
        let high = run(strategy, 30.0);
        assert!(
            high.ttft_mean().as_secs_f64() >= low.ttft_mean().as_secs_f64() * 0.99,
            "{strategy:?}: mean TTFT must not shrink under pressure ({} vs {})",
            high.ttft_mean(),
            low.ttft_mean()
        );
    }
}

/// Cold starts only happen when scale demands them: a trickle is served by
/// one instance.
#[test]
fn low_load_needs_single_instance() {
    let r = run(Strategy::Vanilla, 0.5);
    assert_eq!(r.cold_starts.len(), 1);
}
