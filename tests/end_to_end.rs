//! Cross-crate end-to-end tests: the offline phase of one simulated process
//! must restore correctly in a *different* process (different ASLR, different
//! allocator addresses), and every shortcut the paper rejects must
//! observably fail.

use medusa::{
    materialize_offline, replay_allocations, restore_graph, ColdStart, ColdStartOptions,
    KernelResolver, MaterializedState, MedusaError, Strategy,
};
use medusa_gpu::{CostModel, GpuError, GpuSpec, ProcessRuntime};
use medusa_graph::{GraphError, GraphExec};
use medusa_model::ModelSpec;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

fn artifact(seed: u64) -> MaterializedState {
    materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), seed)
        .expect("offline phase")
        .0
}

/// Blindly dumping and reloading CUDA graphs cannot work (paper §2.5): the
/// offline process's kernel addresses are meaningless in a fresh process.
#[test]
fn blind_graph_dump_fails_across_processes() {
    let s = spec();
    let capture = medusa::run_offline_capture(&s, GpuSpec::a100_40gb(), CostModel::default(), 1)
        .expect("capture");
    // New process, different seed: same catalog, different ASLR.
    let mut rt2 = ProcessRuntime::new(
        medusa_model::build_catalog(&s),
        GpuSpec::a100_40gb(),
        CostModel::default(),
        2,
    );
    rt2.dlopen(medusa_model::MODEL_KERNELS_LIB).expect("dlopen");
    rt2.dlopen(medusa_model::CUBLAS_SIM_LIB).expect("dlopen");
    let dumped = capture.windows[0].graph.clone();
    let err = GraphExec::instantiate(&mut rt2, dumped).expect_err("must fail");
    assert!(
        matches!(err, GraphError::Gpu(GpuError::InvalidDeviceFunction { .. })),
        "stale kernel addresses must be rejected: {err}"
    );
}

/// Hidden (cuBLAS-like) kernels cannot be restored without the
/// triggering-kernels pass (paper §5).
#[test]
fn restoration_without_triggering_kernels_is_incomplete() {
    let art = artifact(3);
    let s = spec();
    let mut rt = ProcessRuntime::new(
        medusa_model::build_catalog(&s),
        GpuSpec::a100_40gb(),
        CostModel::default(),
        4,
    );
    let _inst = medusa_model::ModelInstance::initialize(&mut rt, &s).expect("structure");
    let (layout, _) = replay_allocations(&mut rt, &art).expect("replay");
    let mut resolver = KernelResolver::new();
    resolver
        .resolve_exported(&mut rt, &art)
        .expect("dlsym path");
    let err = restore_graph(&art.graphs[0], &layout, resolver.addrs()).expect_err("must fail");
    assert!(matches!(err, MedusaError::KernelUnresolved { .. }), "{err}");
}

/// Copy-free contents restoration is load-bearing: dropping the permanent
/// (magic) buffer contents from the artifact makes validation fail (§4.3)
/// — and the builder degrades that cold start to the vanilla path rather
/// than erroring out (§7).
#[test]
fn missing_permanent_contents_fail_validation() {
    let mut art = artifact(5);
    assert!(!art.permanent_contents.is_empty());
    art.permanent_contents.clear();
    // Skip the pre-restore artifact checks so the runtime validation
    // forwardings (§8) are what catches the corruption.
    let outcome = ColdStart::new(&spec())
        .strategy(Strategy::Medusa)
        .artifact(&art)
        .validate_artifact(false)
        .validate_graphs(true)
        .seed(6)
        .run()
        .expect("degrades instead of erroring");
    assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
    let fb = outcome.fallback().expect("fallback recorded");
    assert_eq!(fb.reason, "validation_failed", "{}", fb.detail);
}

/// Without validation the same broken artifact restores silently — the
/// graphs replay but produce wrong outputs, which is exactly why the paper
/// keeps the validation pass (§8).
#[test]
fn missing_permanent_contents_change_outputs_silently() {
    let mut art = artifact(7);
    let good = art.clone();
    art.permanent_contents.clear();
    let opts = ColdStartOptions {
        seed: 8,
        ..Default::default()
    };
    // Both validation layers off: the point is the *silent* corruption.
    let restore = |a: &MaterializedState| {
        ColdStart::new(&spec())
            .strategy(Strategy::Medusa)
            .artifact(a)
            .validate_artifact(false)
            .options(opts)
            .run()
            .expect("restores without validation")
            .into_single()
    };
    let (mut bad_engine, _) = restore(&art);
    let (mut good_engine, _) = restore(&good);
    let kv_b = bad_engine.kv_view();
    let kv_g = good_engine.kv_view();
    medusa::reset_kv_state(&mut bad_engine.rt, &kv_b).expect("reset");
    medusa::reset_kv_state(&mut good_engine.rt, &kv_g).expect("reset");
    let out_b = medusa_model::decode_step_with_graph(
        &mut bad_engine.rt,
        &bad_engine.inst,
        &bad_engine.graphs[0].1,
        1,
        9,
    )
    .expect("replays");
    let out_g = medusa_model::decode_step_with_graph(
        &mut good_engine.rt,
        &good_engine.inst,
        &good_engine.graphs[0].1,
        1,
        9,
    )
    .expect("replays");
    assert_ne!(
        out_b.output, out_g.output,
        "missing magic contents must corrupt outputs"
    );
}

/// The artifact survives serialization: a JSON round-trip restores exactly
/// the same engine behaviour.
#[test]
fn artifact_roundtrip_restores_identically() {
    let art = artifact(10);
    let json = art.to_json().expect("encode");
    let back = MaterializedState::from_json(&json).expect("decode");
    let opts = ColdStartOptions {
        seed: 11,
        ..Default::default()
    };
    let run = |a: &MaterializedState| {
        let (mut e, r) = ColdStart::new(&spec())
            .strategy(Strategy::Medusa)
            .artifact(a)
            .options(opts)
            .run()
            .expect("cold start")
            .into_single();
        let kv = e.kv_view();
        medusa::reset_kv_state(&mut e.rt, &kv).expect("reset");
        let out = medusa_model::decode_step_with_graph(&mut e.rt, &e.inst, &e.graphs[3].1, 8, 12)
            .expect("decode");
        (r.loading, out.output)
    };
    assert_eq!(run(&art), run(&back));
}

/// Two different offline runs (different offline seeds) must produce
/// artifacts that restore to identical serving behaviour: the materialized
/// state is a function of <GPU, model>, not of the offline process's
/// addresses (§3: "executed only once for each unique combination").
#[test]
fn offline_seed_does_not_leak_into_restored_behaviour() {
    let a1 = artifact(20);
    let a2 = artifact(21);
    // Raw pointer values differ offline...
    assert_eq!(a1.replay_prefix_allocs, a2.replay_prefix_allocs);
    assert_eq!(a1.total_nodes(), a2.total_nodes());
    assert_eq!(a1.kv_free_bytes, a2.kv_free_bytes, "§6 invariance");
    // ...but restored outputs agree.
    let opts = ColdStartOptions {
        seed: 22,
        validate: true,
        ..Default::default()
    };
    let out = |a: &MaterializedState, seed: u64| {
        let (mut e, _) = ColdStart::new(&spec())
            .strategy(Strategy::Medusa)
            .artifact(a)
            .options(ColdStartOptions { seed, ..opts })
            .run()
            .expect("cold start")
            .into_single();
        let kv = e.kv_view();
        medusa::reset_kv_state(&mut e.rt, &kv).expect("reset");
        medusa_model::decode_step_with_graph(&mut e.rt, &e.inst, &e.graphs[0].1, 1, 13)
            .expect("decode")
            .output
    };
    assert_eq!(out(&a1, 23), out(&a2, 24));
}
