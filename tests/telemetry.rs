//! End-to-end telemetry determinism: because every recorded value derives
//! from the simulated clock, two cold starts with the same seed must export
//! **byte-identical** Prometheus and Chrome telemetry — even when the run
//! itself used real host threads (overlapped / tensor-parallel modes).

use std::collections::HashMap;

use medusa::{
    materialize_offline, materialize_offline_tp_with, ColdStart, ColdStartOptions, Parallelism,
    Strategy,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use medusa_telemetry::export::{chrome, prometheus};
use medusa_telemetry::{bucket_bounds_us, Registry, Snapshot};

const SEED: u64 = 2024;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// One traced Medusa cold start (single rank) on a fixed seed.
fn traced_cold_start() -> (Snapshot, medusa::ColdStartReport) {
    let s = spec();
    let (artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), SEED).expect("offline");
    let tele = Registry::new();
    let (_engine, report) = ColdStart::new(&s)
        .strategy(Strategy::Medusa)
        .artifact(&artifact)
        .seed(SEED)
        .telemetry(&tele)
        .run()
        .expect("cold start")
        .into_single();
    (tele.snapshot(), report)
}

/// One traced tp=2 pipelined cold start — rank work runs on real threads,
/// so this exercises the interleaving-independence of the registry.
fn traced_tp_cold_start() -> Snapshot {
    let s = spec();
    let gpu = GpuSpec::a100_40gb();
    let cost = CostModel::default();
    let (arts, _) = materialize_offline_tp_with(
        &s,
        2,
        gpu.clone(),
        cost.clone(),
        SEED,
        Parallelism::PipelinedTp,
    )
    .expect("tp offline");
    let tele = Registry::new();
    ColdStart::new(&s)
        .strategy(Strategy::Medusa)
        .gpu(gpu)
        .cost(cost)
        .options(ColdStartOptions {
            seed: SEED + 1,
            warm_container: true,
            parallelism: Parallelism::PipelinedTp,
            ..Default::default()
        })
        .artifacts(&arts)
        .telemetry(&tele)
        .run()
        .expect("tp cold start");
    tele.snapshot()
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let (a, _) = traced_cold_start();
    let (b, _) = traced_cold_start();
    assert_eq!(
        prometheus::render(&a),
        prometheus::render(&b),
        "Prometheus export must be reproducible"
    );
    assert_eq!(
        chrome::render(&a),
        chrome::render(&b),
        "Chrome trace export must be reproducible"
    );
}

#[test]
fn threaded_tp_exports_are_byte_identical() {
    let a = traced_tp_cold_start();
    let b = traced_tp_cold_start();
    assert_eq!(prometheus::render(&a), prometheus::render(&b));
    assert_eq!(chrome::render(&a), chrome::render(&b));
}

#[test]
fn histogram_bucket_bounds_are_stable() {
    // The exact 1-2-5 decade series, in µs. Changing these silently breaks
    // baseline comparability of every committed histogram — so the full
    // array is pinned here.
    assert_eq!(
        bucket_bounds_us(),
        [
            1,
            2,
            5,
            10,
            20,
            50,
            100,
            200,
            500,
            1_000,
            2_000,
            5_000,
            10_000,
            20_000,
            50_000,
            100_000,
            200_000,
            500_000,
            1_000_000,
            2_000_000,
            5_000_000,
            10_000_000,
            20_000_000,
            50_000_000,
            100_000_000,
            200_000_000,
            500_000_000,
            1_000_000_000,
            2_000_000_000,
            5_000_000_000,
        ]
    );
}

#[test]
fn span_parentage_matches_engine_critical_path() {
    let (snap, report) = traced_cold_start();
    let parents: HashMap<&str, Option<&str>> = snap
        .spans
        .iter()
        .map(|s| (s.name.as_str(), s.parent.as_deref()))
        .collect();
    assert_eq!(parents.len(), snap.spans.len(), "span names must be unique");

    let cp: Vec<String> = report.critical_path.iter().map(|s| s.to_string()).collect();
    assert!(!cp.is_empty(), "loading phase must have a critical path");
    // First token is gated by the end of the loading-phase critical path.
    assert_eq!(
        parents["first token"],
        cp.last().map(String::as_str),
        "first token must chain to the last critical-path stage"
    );
    // Interior critical-path stages chain to their binding predecessor —
    // the same walk Schedule::critical_path performs inside the engine.
    for pair in cp.windows(2) {
        assert_eq!(
            parents[pair[1].as_str()],
            Some(pair[0].as_str()),
            "critical-path stage `{}` must be parented to `{}`",
            pair[1],
            pair[0]
        );
    }
    // Every recorded span is reachable: it either roots the trace or names
    // a parent that exists.
    for span in &snap.spans {
        if let Some(p) = &span.parent {
            assert!(parents.contains_key(p.as_str()), "dangling parent `{p}`");
        }
    }
}

#[test]
fn chrome_export_is_valid_json_and_covers_all_loading_stages() {
    let (snap, _) = traced_cold_start();
    let json = chrome::render(&snap);
    serde_json::from_str::<serde::Value>(&json).expect("chrome trace must be valid JSON");
    // The paper's five loading stages, plus the bracketing runtime init and
    // first token, must all appear as complete events.
    for stage in [
        "structure init",
        "weights load",
        "tokenizer load",
        "kv cache init",
        "capturing",
        "runtime init",
        "first token",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{stage}\"")),
            "chrome trace must contain a `{stage}` event"
        );
    }
}
