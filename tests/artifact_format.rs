//! Property tests for the MAF2 binary artifact container (DESIGN.md §13).
//!
//! Three contracts are pinned here, across materialization seeds and
//! tensor-parallel degrees:
//!
//! 1. **Round-trip preserves identity** — JSON → MAF2 → JSON (and the
//!    reverse) reproduces the exact [`MaterializedState`], including its
//!    sealed `content_checksum()`.
//! 2. **Canonical encoding** — re-encoding a decoded artifact is
//!    byte-identical to the original encoding for every seed; MAF2 bytes
//!    are a pure function of the artifact's content.
//! 3. **Lazy == eager** — materializing one shard on first touch yields
//!    the same state as eagerly decoding the whole bundle, while reading
//!    strictly less than `1/tp` of the file (plus the O(header + index)
//!    open cost).

use medusa::{
    encode_maf2_bundle, is_maf2, materialize_offline, materialize_offline_tp, Maf2Reader,
    MaterializedState, TpArtifacts,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// The offline phase dominates test time, so artifacts are materialized
/// once per `(seed, tp)` and shared across property cases.
fn single(seed: u64) -> MaterializedState {
    static POOL: OnceLock<Mutex<HashMap<u64, MaterializedState>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().expect("artifact pool");
    pool.entry(seed)
        .or_insert_with(|| {
            materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), seed)
                .expect("offline phase")
                .0
        })
        .clone()
}

fn bundle(tp: u32, seed: u64) -> TpArtifacts {
    static POOL: OnceLock<Mutex<HashMap<(u32, u64), TpArtifacts>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().expect("bundle pool");
    pool.entry((tp, seed))
        .or_insert_with(|| {
            materialize_offline_tp(
                &spec(),
                tp,
                GpuSpec::a100_40gb(),
                CostModel::default(),
                seed,
            )
            .expect("offline tp phase")
            .0
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// JSON → MAF2 → JSON round-trips are lossless: the restored state is
    /// structurally identical and its sealed `content_checksum()` — the
    /// fold the registry and cache key on — survives both hops.
    #[test]
    fn json_maf2_roundtrip_preserves_content_checksum(seed in 1u64..5, hops in 1usize..4) {
        let original = single(seed);
        let mut state = original.clone();
        for _ in 0..hops {
            let json = state.to_json().expect("to_json");
            let via_json = MaterializedState::from_json(&json).expect("from_json");
            let maf2 = via_json.to_maf2().expect("to_maf2");
            prop_assert!(is_maf2(&maf2));
            state = MaterializedState::from_maf2(&maf2).expect("from_maf2");
        }
        prop_assert_eq!(
            state.content_checksum(), original.content_checksum(),
            "content checksum drifted across {} encode hops", hops
        );
        prop_assert_eq!(&state, &original);
    }

    /// MAF2 is canonical: encoding the same artifact twice — and encoding
    /// its decoded copy — produces byte-identical files for every seed.
    #[test]
    fn reencode_is_byte_identical_per_seed(seed in 1u64..5) {
        let artifact = single(seed);
        let first = artifact.to_maf2().expect("encode");
        let second = artifact.to_maf2().expect("encode again");
        prop_assert_eq!(&first, &second, "same state, different bytes");
        let decoded = MaterializedState::from_maf2(&first).expect("decode");
        let third = decoded.to_maf2().expect("re-encode decoded");
        prop_assert_eq!(&first, &third, "decode/encode is not the identity");
    }

    /// Lazily materializing one shard of a bundle equals the eager parse
    /// of that shard, and touches < 1/tp of the file beyond the
    /// O(header + index) open.
    #[test]
    fn lazy_shard_restore_matches_eager_parse(tp in 2u32..5, seed in 1u64..3, pick in 0u32..64) {
        let arts = bundle(tp, seed);
        let bytes = arts.to_maf2().expect("encode bundle");
        let eager = TpArtifacts::from_maf2(&bytes).expect("eager decode");

        let reader = Maf2Reader::open(&bytes).expect("open");
        let open_bytes = reader.bytes_read();
        let rank = pick % tp;
        let lazy = reader.shard(rank).expect("lazy shard");
        prop_assert_eq!(lazy, eager.rank(rank));
        prop_assert_eq!(lazy, arts.rank(rank));
        let shard_bytes = reader.bytes_read() - open_bytes;
        prop_assert!(
            shard_bytes < bytes.len() as u64 / tp as u64 + 1,
            "rank {} read {} of {} bytes (tp {})", rank, shard_bytes, bytes.len(), tp
        );
        // A second touch is served from the cache: zero additional reads.
        let before = reader.bytes_read();
        let again = reader.shard(rank).expect("cached shard");
        prop_assert_eq!(again, lazy);
        prop_assert_eq!(reader.bytes_read(), before);
    }

    /// `encode_maf2_bundle` over explicit shard refs agrees with the
    /// [`TpArtifacts`] wrapper — one canonical bundle encoding.
    #[test]
    fn bundle_encoding_is_order_insensitive(tp in 2u32..4, seed in 1u64..3, rev in any::<bool>()) {
        let arts = bundle(tp, seed);
        let mut refs: Vec<&MaterializedState> = arts.iter().collect();
        if rev {
            refs.reverse();
        }
        let via_refs = encode_maf2_bundle(&refs).expect("encode refs");
        let via_wrapper = arts.to_maf2().expect("encode wrapper");
        prop_assert_eq!(via_refs, via_wrapper);
    }
}
