//! Fault-injection properties (paper §7: graceful degradation).
//!
//! The contract pinned here: under **every** fault class in the
//! deterministic [`FaultPlan`] matrix — corrupt artifact, version skew,
//! missing library, truncated weights, mid-stage abort — a cold start
//! either completes via a recorded Vanilla fallback or returns a typed
//! [`medusa::MedusaError`]. Never a panic. And a faulty run is exactly as
//! reproducible as a healthy one: same seed ⇒ byte-identical reports.

use medusa::{materialize_offline, ColdStart, FaultKind, FaultPlan, MaterializedState, Strategy};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// The offline phase is the expensive part — materialize once and share.
fn artifact() -> &'static MaterializedState {
    static ARTIFACT: OnceLock<MaterializedState> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 19)
            .expect("offline phase")
            .0
    })
}

/// Builds a plan from a non-empty 5-bit mask over [`FaultKind::ALL`].
fn plan_from_mask(mask: u8, seed: u64) -> FaultPlan {
    FaultKind::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .fold(FaultPlan::new(seed), |p, (_, &k)| p.with(k))
}

/// Every single fault class, exhaustively: a Medusa cold start degrades to
/// a completed Vanilla fallback with the failure recorded — no panics, no
/// lost cold starts.
#[test]
fn each_fault_class_degrades_medusa_to_a_completed_vanilla_fallback() {
    let s = spec();
    for kind in FaultKind::ALL {
        for seed in [1, 17, 4242] {
            let outcome = ColdStart::new(&s)
                .strategy(Strategy::Medusa)
                .artifact(artifact())
                .seed(5)
                .faults(FaultPlan::single(kind, seed))
                .run()
                .unwrap_or_else(|e| panic!("{kind:?}/{seed}: must degrade, got error {e}"));
            assert_eq!(
                outcome.strategy_used(),
                Strategy::Vanilla,
                "{kind:?}/{seed}"
            );
            let fb = outcome
                .fallback()
                .unwrap_or_else(|| panic!("{kind:?}/{seed}: fallback not recorded"));
            assert!(!fb.reason.is_empty() && !fb.detail.is_empty());
            assert_eq!(outcome.engines.len(), 1, "the fallback still serves");
        }
    }
}

/// Runtime faults on the vanilla path have nothing to degrade to: they
/// surface as typed errors with stable kinds — never a panic.
#[test]
fn runtime_faults_on_vanilla_surface_typed_errors() {
    let s = spec();
    for (kind, expect) in [
        (FaultKind::TruncatedWeights, "weight_stream_truncated"),
        (FaultKind::MidStageAbort, "stage_aborted"),
    ] {
        for seed in [3, 999] {
            let err = ColdStart::new(&s)
                .seed(5)
                .faults(FaultPlan::single(kind, seed))
                .run()
                .expect_err("vanilla runtime fault must error");
            assert_eq!(err.kind(), expect, "{kind:?}/{seed}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary fault combinations never panic: Medusa with an artifact
    /// always completes via Vanilla fallback (or a typed error), and the
    /// same seed reproduces the outcome byte-for-byte.
    #[test]
    fn fault_combinations_degrade_deterministically(
        mask in 1u8..32,
        fault_seed in 0u64..10_000,
        online_seed in 0u64..10_000,
    ) {
        let s = spec();
        let plan = plan_from_mask(mask, fault_seed);
        let run = || {
            ColdStart::new(&s)
                .strategy(Strategy::Medusa)
                .artifact(artifact())
                .seed(online_seed)
                .faults(plan)
                .run()
        };
        match run() {
            Ok(outcome) => {
                let fb = outcome.fallback().expect("armed fault must be recorded");
                prop_assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
                prop_assert!(!fb.reason.is_empty());
                // Reproducibility: the re-run takes the same path and
                // reports the same timings, to the byte.
                let again = run().expect("same seed, same result");
                prop_assert_eq!(outcome.summary_json(), again.summary_json());
                prop_assert_eq!(
                    serde_json::to_string(&outcome.reports).expect("encode"),
                    serde_json::to_string(&again.reports).expect("encode")
                );
            }
            Err(err) => prop_assert!(!err.kind().is_empty(), "typed, never a panic"),
        }
    }

    /// Tampering is a pure function of the plan seed; different seeds pick
    /// different corruption targets but the checksum always catches an
    /// armed corruption.
    #[test]
    fn corruption_is_always_caught_by_the_checksum(fault_seed in 0u64..10_000) {
        let tampered = FaultPlan::single(FaultKind::CorruptArtifact, fault_seed)
            .apply_to_artifact(artifact());
        prop_assert!(tampered.verify_checksum().is_err());
        let again = FaultPlan::single(FaultKind::CorruptArtifact, fault_seed)
            .apply_to_artifact(artifact());
        prop_assert_eq!(tampered, again);
    }
}
