//! Paper §8 extensions: device-side allocations and indirect pointers.
//!
//! The paper found neither in the ten evaluated models (139 364 nodes) and
//! proposed handling them via a compilation pass that intercepts
//! device-side allocations. This reproduction implements that extension;
//! these tests exercise it with a purpose-built kernel library:
//!
//! * a *producer* kernel performs a device-side allocation;
//! * a *gather* kernel takes a **pointer table** (an array of device
//!   pointers) that references the device-allocated buffer;
//! * materialization + restoration round-trips both, and turning the
//!   interception off reproduces the failure mode §8 warns about.

use medusa::{
    analyze, replay_allocations, restore_graph, CaptureOutput, GraphWindow, KernelInfo,
    KernelResolver, MaterializedState, MedusaError,
};
use medusa_gpu::{
    AllocTag, CostClass, CostModel, DevicePtr, Digest, GpuSpec, KernelDef, KernelSig,
    LibraryCatalog, LibrarySpec, ModuleSpec, ParamKind, ProcessRuntime, Work,
};
use medusa_graph::{capture_graph, GraphExec};
use std::collections::HashMap;
use std::sync::Arc;

const LIB: &str = "libext.so";

fn catalog() -> Arc<LibraryCatalog> {
    LibraryCatalog::new(vec![LibrarySpec::new(
        LIB,
        false,
        vec![ModuleSpec::new(
            "ext_ops",
            vec![
                KernelDef::new(
                    "moe_router_alloc",
                    true,
                    KernelSig::new(vec![ParamKind::PtrIn, ParamKind::PtrOut]),
                    CostClass::MemoryBound,
                ),
                KernelDef::new(
                    "gather_indirect",
                    true,
                    KernelSig::new(vec![ParamKind::PtrArrayIn, ParamKind::PtrOut]),
                    CostClass::MemoryBound,
                ),
            ],
        )],
    )])
}

fn rt(seed: u64) -> ProcessRuntime {
    ProcessRuntime::new(
        catalog(),
        GpuSpec::new("test-gpu", 1 << 30),
        CostModel::default(),
        seed,
    )
}

struct OfflineRun {
    capture: CaptureOutput,
    /// The eager reference output of the gather kernel.
    reference: Digest,
}

/// Runs the instrumented offline flow with or without the §8 interception.
fn offline(seed: u64, intercept: bool) -> OfflineRun {
    let mut p = rt(seed);
    p.set_intercept_device_allocs(intercept);
    p.enable_tracing();
    p.dlopen(LIB).unwrap();
    let producer = p
        .kernel_address(p.catalog().find_kernel(LIB, "moe_router_alloc").unwrap())
        .unwrap();
    let gather = p
        .kernel_address(p.catalog().find_kernel(LIB, "gather_indirect").unwrap())
        .unwrap();

    // "Structure init": one natural weight allocation.
    let w = p.cuda_malloc(1024, AllocTag::Weights).unwrap();
    p.memory_mut().write_digest(w.addr(), [3u8; 16]).unwrap();
    let replay_start_pos = p.trace_len();
    let stage_start_pos = p.trace_len();

    // Warm-up: producer performs a device-side allocation...
    let input = p.cuda_malloc(512, AllocTag::Activation).unwrap();
    p.memory_mut()
        .write_digest(input.addr(), [7u8; 16])
        .unwrap();
    let routed = p
        .launch_allocating_kernel(
            producer,
            &[w.addr(), input.addr()],
            Work::NONE,
            0,
            2048,
            AllocTag::Workspace,
        )
        .unwrap();
    // ...and writes into it on-device.
    p.memory_mut()
        .write_digest(routed.addr(), [9u8; 16])
        .unwrap();

    // Host code builds a pointer table referencing the device-side buffer.
    let table = p.cuda_malloc(64, AllocTag::Workspace).unwrap();
    p.memory_mut()
        .write_ptr_table(table.addr(), vec![routed.addr(), input.addr()])
        .unwrap();
    let out = p.cuda_malloc(512, AllocTag::Workspace).unwrap();

    // Warm-up launch (loads the module), then capture the gather.
    p.launch_kernel(gather, &[table.addr(), out.addr()], Work::NONE, 0)
        .unwrap();
    let reference = p.memory().read_digest(out.addr()).unwrap();
    let trace_start = p.trace_len();
    let graph = capture_graph(&mut p, 0, |p| {
        p.launch_kernel(gather, &[table.addr(), out.addr()], Work::NONE, 0)
    })
    .unwrap();
    let trace_end = p.trace_len();
    let capture_end_pos = p.trace_len();

    let mut kernel_info = HashMap::new();
    kernel_info.insert(
        gather,
        KernelInfo {
            name: "gather_indirect".into(),
            library: LIB.into(),
            exported: true,
        },
    );

    let mut final_contents = HashMap::new();
    let mut final_ptr_tables = HashMap::new();
    let live: Vec<(u64, u64)> = p
        .memory()
        .iter()
        .map(|a| (a.seq(), a.base().addr()))
        .collect();
    for (seq, addr) in live {
        final_contents.insert(seq, p.memory().read_digest(addr).unwrap());
        let t = p.memory().read_ptr_table(addr).unwrap();
        if !t.is_empty() {
            final_ptr_tables.insert(seq, t.to_vec());
        }
    }

    OfflineRun {
        capture: CaptureOutput {
            model: "ext-model".into(),
            gpu: "test-gpu".into(),
            rank: 0,
            tp: 1,
            trace: p.take_trace(),
            replay_start_pos,
            stage_start_pos,
            capture_end_pos,
            windows: vec![GraphWindow {
                batch: 1,
                trace_start,
                trace_end,
                graph,
            }],
            kernel_info,
            final_contents,
            final_ptr_tables,
            kv_free_bytes: 0,
            labels: HashMap::new(),
            duration: medusa_gpu::SimDuration::ZERO,
        },
        reference,
    }
}

fn restore_and_replay(artifact: &MaterializedState, seed: u64) -> Digest {
    let mut p = rt(seed);
    // Natural prefix: the same single weight allocation.
    let w = p.cuda_malloc(1024, AllocTag::Weights).unwrap();
    p.memory_mut().write_digest(w.addr(), [3u8; 16]).unwrap();
    let (layout, _) = replay_allocations(&mut p, artifact).unwrap();
    let mut resolver = KernelResolver::new();
    resolver.resolve_exported(&mut p, artifact).unwrap();
    resolver.ensure_complete(artifact).unwrap();
    let graph = restore_graph(&artifact.graphs[0], &layout, resolver.addrs()).unwrap();
    let out_param = graph.node(0).params().value(1);
    let exec = GraphExec::instantiate(&mut p, graph).unwrap();
    exec.launch(&mut p, 0).unwrap();
    p.device_synchronize().unwrap();
    p.memory().read_digest(out_param).unwrap()
}

/// With the §8 compilation-pass interception, device-side allocations join
/// the replay sequence and pointer tables are materialized entry-by-entry:
/// the restored graph reproduces the offline output in a fresh process.
#[test]
fn device_allocs_and_ptr_tables_roundtrip() {
    let run = offline(1, true);
    let artifact = analyze(&run.capture, &CostModel::default()).unwrap().state;
    // The device-side allocation is part of the replay ops.
    assert!(artifact.replay_ops.len() >= 4, "input, routed, table, out");
    assert_eq!(
        artifact.permanent_ptr_tables.len(),
        1,
        "one materialized pointer table"
    );
    assert_eq!(artifact.permanent_ptr_tables[0].1.len(), 2);
    let restored = restore_and_replay(&artifact, 2);
    assert_eq!(
        restored, run.reference,
        "indirect targets must restore exactly"
    );
    // And across a different online seed, too.
    assert_eq!(restore_and_replay(&artifact, 77), run.reference);
}

/// Without interception the analysis cannot match the pointer-table entry
/// that targets the device-allocated buffer — the §8 failure mode surfaces
/// loudly instead of corrupting memory.
#[test]
fn missing_interception_is_detected() {
    let run = offline(3, false);
    let err = analyze(&run.capture, &CostModel::default()).unwrap_err();
    assert!(
        matches!(err, MedusaError::UnmatchedTableEntry { .. }),
        "expected unmatched table entry, got {err}"
    );
}

/// Device-side allocating kernels cannot be stream-captured in this model.
#[test]
fn allocating_kernel_rejected_during_capture() {
    let mut p = rt(4);
    p.dlopen(LIB).unwrap();
    let producer = p
        .kernel_address(p.catalog().find_kernel(LIB, "moe_router_alloc").unwrap())
        .unwrap();
    let a = p.cuda_malloc(256, AllocTag::Activation).unwrap();
    p.memory_mut().write_digest(a.addr(), [1; 16]).unwrap();
    // Warm up (module load) outside capture.
    p.launch_kernel(producer, &[a.addr(), a.addr()], Work::NONE, 0)
        .unwrap();
    p.begin_capture(0).unwrap();
    let err = p
        .launch_allocating_kernel(
            producer,
            &[a.addr(), a.addr()],
            Work::NONE,
            0,
            64,
            AllocTag::Workspace,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        medusa_gpu::GpuError::DeviceAllocDuringCapture
    ));
    p.end_capture().unwrap();
}

/// A restored pointer table whose target buffer was freed faults at replay
/// (dangling indirect pointer), not silently.
#[test]
fn dangling_indirect_target_faults() {
    let mut p = rt(5);
    p.dlopen(LIB).unwrap();
    let gather = p
        .kernel_address(p.catalog().find_kernel(LIB, "gather_indirect").unwrap())
        .unwrap();
    let target = p.cuda_malloc(256, AllocTag::Workspace).unwrap();
    p.memory_mut().write_digest(target.addr(), [5; 16]).unwrap();
    let table = p.cuda_malloc(64, AllocTag::Workspace).unwrap();
    p.memory_mut()
        .write_ptr_table(table.addr(), vec![target.addr()])
        .unwrap();
    let out = p.cuda_malloc(256, AllocTag::Workspace).unwrap();
    p.launch_kernel(gather, &[table.addr(), out.addr()], Work::NONE, 0)
        .unwrap();
    // Kill the indirect target: subsequent execution must fault.
    p.cuda_free(target).unwrap();
    let err = p
        .launch_kernel(gather, &[table.addr(), out.addr()], Work::NONE, 0)
        .unwrap_err();
    assert!(matches!(err, medusa_gpu::GpuError::DanglingRead { .. }));
    let _ = DevicePtr::NULL;
}
