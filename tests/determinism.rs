//! Determinism guarantees of the parallel cold-start engine.
//!
//! The engine runs tokenizer loading and per-rank restoration on real
//! worker threads, but every reported timing is computed from the stage
//! dependency graph — never from host thread timing. These tests pin that
//! contract: same seed ⇒ byte-identical reports and identical engine
//! state, per parallelism mode; and serial vs overlapped differ only in
//! how the same work is laid out on the timeline.

use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MaterializedState, Parallelism, ReadyEngine,
    Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimTime};
use medusa_model::ModelSpec;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

fn artifact() -> MaterializedState {
    let (artifact, _) =
        materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 11)
            .expect("offline materialization");
    artifact
}

fn opts(parallelism: Parallelism) -> ColdStartOptions {
    ColdStartOptions {
        seed: 42,
        warm_container: true,
        parallelism,
        ..Default::default()
    }
}

/// An observable fingerprint of a ready engine: captured graph batch
/// sizes, a few decode-step durations across batch sizes, and the final
/// process clock. Two engines with identical fingerprints are
/// indistinguishable to the serving layer.
fn engine_fingerprint(engine: &mut ReadyEngine) -> Vec<u64> {
    let mut sig: Vec<u64> = engine.graphs.iter().map(|(b, _)| u64::from(*b)).collect();
    for &batch in &[1u32, 8, 32] {
        for _ in 0..2 {
            sig.push(engine.decode_step(batch).expect("decode step").as_nanos());
        }
    }
    sig.push((engine.rt.now() - SimTime::ZERO).as_nanos());
    sig
}

#[test]
fn same_seed_cold_starts_are_byte_identical_per_mode() {
    let artifact = artifact();
    let s = spec();
    for strategy in [Strategy::Medusa, Strategy::VanillaAsync] {
        for mode in Parallelism::ALL {
            let art = (strategy == Strategy::Medusa).then_some(&artifact);
            let run = || {
                let mut builder = ColdStart::new(&s).strategy(strategy).options(opts(mode));
                if let Some(a) = art {
                    builder = builder.artifact(a);
                }
                builder.run().expect("cold start").into_single()
            };
            let (mut engine_a, report_a) = run();
            let (mut engine_b, report_b) = run();
            let json_a = serde_json::to_string(&report_a).expect("encode report");
            let json_b = serde_json::to_string(&report_b).expect("encode report");
            assert_eq!(
                json_a, json_b,
                "{strategy:?}/{mode}: reports not byte-identical"
            );
            assert!(
                !report_a.critical_path.is_empty(),
                "{strategy:?}/{mode}: no critical path"
            );
            assert_eq!(
                engine_fingerprint(&mut engine_a),
                engine_fingerprint(&mut engine_b),
                "{strategy:?}/{mode}: engine state diverged"
            );
        }
    }
}

#[test]
fn medusa_serial_and_overlapped_agree_on_work_but_not_wall_clock() {
    let artifact = artifact();
    let run = |mode| {
        let (_, report) = ColdStart::new(&spec())
            .strategy(Strategy::Medusa)
            .artifact(&artifact)
            .options(opts(mode))
            .run()
            .expect("cold start")
            .into_single();
        report
    };
    let serial = run(Parallelism::Serial);
    let overlapped = run(Parallelism::Overlapped);
    // Same stages, same durations — overlapping rearranges, it does not
    // change the work (at tp=1 the weights lane runs at full bandwidth in
    // both modes).
    assert_eq!(
        serial.work(),
        overlapped.work(),
        "overlap changed the total work"
    );
    assert!(
        overlapped.loading < serial.loading,
        "overlap did not shorten the wall clock: {} !< {}",
        overlapped.loading,
        serial.loading
    );
    // Serial is a single chain: wall clock equals the work exactly.
    assert_eq!(
        serial.loading,
        serial.work(),
        "serial timeline has gaps or overlap"
    );
}

#[test]
fn vanilla_async_interference_inflates_work_but_overlap_still_wins() {
    // §7.3: under overlap, weight H2D transfers contend with profiling
    // (factor 0.82), so the overlapped weights stage takes *longer* than
    // serial — yet the cold start still finishes earlier because the rest
    // of the pipeline hides it (Fig. 8b).
    let run = |mode| {
        let (_, report) = ColdStart::new(&spec())
            .strategy(Strategy::VanillaAsync)
            .options(opts(mode))
            .run()
            .expect("cold start")
            .into_single();
        report
    };
    let serial = run(Parallelism::Serial);
    let overlapped = run(Parallelism::Overlapped);
    assert!(
        overlapped.work() > serial.work(),
        "overlapped VanillaAsync should pay H2D interference"
    );
    assert!(
        overlapped.loading < serial.loading,
        "overlap should still beat serial despite interference"
    );
}
