//! Concurrency stress: many simultaneous cold starts on distinct
//! `ProcessRuntime`s must neither panic nor cross-talk. Each thread's
//! report is compared against a single-threaded run of the identical
//! configuration — any shared mutable state between instances would show
//! up as a timing or span divergence.

use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MaterializedState, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// One cold start under the given configuration, reduced to a comparable
/// JSON fingerprint.
fn run_one(
    strategy: Strategy,
    mode: Parallelism,
    seed: u64,
    artifact: Option<&MaterializedState>,
) -> String {
    let opts = ColdStartOptions {
        seed,
        warm_container: true,
        parallelism: mode,
        ..Default::default()
    };
    let s = spec();
    let mut builder = ColdStart::new(&s).strategy(strategy).options(opts);
    if let Some(a) = artifact {
        builder = builder.artifact(a);
    }
    let (_, report) = builder.run().expect("cold start").into_single();
    serde_json::to_string(&report).expect("encode report")
}

fn configs(n: usize) -> Vec<(Strategy, Parallelism, u64)> {
    let strategies = [
        Strategy::Medusa,
        Strategy::VanillaAsync,
        Strategy::Vanilla,
        Strategy::NoCudaGraph,
    ];
    (0..n)
        .map(|i| {
            (
                strategies[i % strategies.len()],
                Parallelism::ALL[i % 3],
                9000 + i as u64,
            )
        })
        .collect()
}

fn run_stress(n: usize) {
    let (artifact, _) =
        materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 21)
            .expect("offline materialization");
    let configs = configs(n);
    // Ground truth, single-threaded.
    let expected: Vec<String> = configs
        .iter()
        .map(|&(s, m, seed)| run_one(s, m, seed, (s == Strategy::Medusa).then_some(&artifact)))
        .collect();
    // The same configurations, all at once on real threads.
    let observed: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|&(s, m, seed)| {
                let artifact = &artifact;
                scope
                    .spawn(move || run_one(s, m, seed, (s == Strategy::Medusa).then_some(artifact)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cold-start thread panicked"))
            .collect()
    });
    for (i, (exp, obs)) in expected.iter().zip(&observed).enumerate() {
        assert_eq!(
            exp, obs,
            "concurrent run {i} ({:?}/{}) diverged from its single-threaded twin",
            configs[i].0, configs[i].1
        );
    }
}

#[test]
fn concurrent_cold_starts_do_not_interfere() {
    run_stress(4);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress sized for --release; ci.sh runs it there"
)]
fn stress_sixteen_simultaneous_cold_starts() {
    run_stress(16);
}
