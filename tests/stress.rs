//! Concurrency and scale stress: many simultaneous cold starts on
//! distinct `ProcessRuntime`s must neither panic nor cross-talk, and the
//! event-driven fleet core must replay a large fleet's worth of events in
//! wall-clock seconds. Each stress thread's report is compared against a
//! single-threaded run of the identical configuration — any shared
//! mutable state between instances would show up as a timing or span
//! divergence.

use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MaterializedState, Parallelism, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_serving::{simulate_fleet, ClusterSpec, FleetProfile, PerfModel, Policy};
use medusa_workload::TraceConfig;

/// Sized-for-big-iron tests bail out (rather than thrash or time out) on
/// small hosts. Returns `true` when the test should be skipped; the skip
/// message names the core count the test needs, so a CI log reading
/// "needs >= N cores" is actionable rather than mysterious.
fn skip_below_cores(required: usize, test: &str) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < required {
        eprintln!("skipping {test}: needs >= {required} cores, host has {cores}");
        return true;
    }
    false
}

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// One cold start under the given configuration, reduced to a comparable
/// JSON fingerprint.
fn run_one(
    strategy: Strategy,
    mode: Parallelism,
    seed: u64,
    artifact: Option<&MaterializedState>,
) -> String {
    let opts = ColdStartOptions {
        seed,
        warm_container: true,
        parallelism: mode,
        ..Default::default()
    };
    let s = spec();
    let mut builder = ColdStart::new(&s).strategy(strategy).options(opts);
    if let Some(a) = artifact {
        builder = builder.artifact(a);
    }
    let (_, report) = builder.run().expect("cold start").into_single();
    serde_json::to_string(&report).expect("encode report")
}

fn configs(n: usize) -> Vec<(Strategy, Parallelism, u64)> {
    let strategies = [
        Strategy::Medusa,
        Strategy::VanillaAsync,
        Strategy::Vanilla,
        Strategy::NoCudaGraph,
    ];
    (0..n)
        .map(|i| {
            (
                strategies[i % strategies.len()],
                Parallelism::ALL[i % 3],
                9000 + i as u64,
            )
        })
        .collect()
}

fn run_stress(n: usize) {
    let (artifact, _) =
        materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), 21)
            .expect("offline materialization");
    let configs = configs(n);
    // Ground truth, single-threaded.
    let expected: Vec<String> = configs
        .iter()
        .map(|&(s, m, seed)| run_one(s, m, seed, (s == Strategy::Medusa).then_some(&artifact)))
        .collect();
    // The same configurations, all at once on real threads.
    let observed: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|&(s, m, seed)| {
                let artifact = &artifact;
                scope
                    .spawn(move || run_one(s, m, seed, (s == Strategy::Medusa).then_some(artifact)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cold-start thread panicked"))
            .collect()
    });
    for (i, (exp, obs)) in expected.iter().zip(&observed).enumerate() {
        assert_eq!(
            exp, obs,
            "concurrent run {i} ({:?}/{}) diverged from its single-threaded twin",
            configs[i].0, configs[i].1
        );
    }
}

#[test]
fn concurrent_cold_starts_do_not_interfere() {
    run_stress(4);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress sized for --release; ci.sh runs it there"
)]
fn stress_sixteen_simultaneous_cold_starts() {
    if skip_below_cores(2, "stress_sixteen_simultaneous_cold_starts") {
        return;
    }
    run_stress(16);
}

/// Large-fleet scale gate: hundreds of nodes absorbing thousands of
/// requests per second through the event core, in wall-clock seconds.
/// Uses synthetic (millisecond-scale) cost tables so the test measures
/// the *simulator's* throughput, not the pipeline model's.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "scale gate sized for --release; ci.sh runs it there"
)]
fn large_fleet_event_core_replays_in_seconds() {
    if skip_below_cores(2, "large_fleet_event_core_replays_in_seconds") {
        return;
    }
    let perf = PerfModel::from_tables(
        Strategy::Medusa,
        "scale-toy",
        SimDuration::from_millis(450),
        vec![1, 8, 32],
        vec![
            SimDuration::from_millis(5),
            SimDuration::from_millis(6),
            SimDuration::from_millis(8),
        ],
        vec![
            (100, SimDuration::from_millis(20)),
            (400, SimDuration::from_millis(45)),
            (2048, SimDuration::from_millis(90)),
        ],
    );
    let profile = FleetProfile::from_perf(Strategy::Medusa, perf)
        .with_fetch(SimDuration::from_millis(250))
        .with_degraded_loading(SimDuration::from_millis(1400));
    let nodes = 512;
    let cluster = ClusterSpec::uniform(nodes).with_cached_prefix(nodes);
    let trace = TraceConfig::interactive(5000.0, 30.0)
        .with_seed(77)
        .generate();
    let start = std::time::Instant::now();
    let out = simulate_fleet(&profile, &cluster, Policy::ColdStartAware, &trace);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(out.conservation_residual(), 0);
    assert_eq!(
        out.report.completed,
        trace.len(),
        "scale run must drain dry"
    );
    assert!(
        out.stats.events_processed as usize > trace.len(),
        "event count implausibly low: {}",
        out.stats.events_processed
    );
    assert!(
        wall < 60.0,
        "{nodes}-node fleet ({} requests, {} events) took {wall:.1}s — \
         event core has regressed past the scale budget",
        trace.len(),
        out.stats.events_processed
    );
}
