//! Property-based tests over the core data structures and invariants.

use medusa_gpu::{
    AllocTag, CostModel, DeviceMemory, DevicePtr, KernelSig, ParamBuffer, ParamKind, SimDuration,
};
use medusa_model::Tokenizer;
use medusa_workload::LengthSampler;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Allocator invariants under arbitrary alloc/free interleavings:
    /// accounting is exact, live ranges never overlap, `containing` agrees
    /// with the live set, and the allocation sequence numbering is dense.
    #[test]
    fn allocator_invariants(
        seed in 0u64..1000,
        ops in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..200),
    ) {
        let mut mem = DeviceMemory::new(1 << 30, seed);
        let mut live: Vec<(DevicePtr, u64)> = Vec::new();
        let mut total_allocs = 0u64;
        for (size, free_instead) in ops {
            if free_instead && !live.is_empty() {
                let (ptr, _) = live.swap_remove((size % live.len() as u64) as usize);
                prop_assert!(mem.free(ptr).is_ok());
            } else {
                let ptr = mem.alloc(size, AllocTag::Other).unwrap();
                let alloc = *mem.containing(ptr.addr()).unwrap();
                prop_assert_eq!(alloc.base(), ptr);
                prop_assert!(alloc.size() >= size.max(1));
                prop_assert_eq!(alloc.seq(), total_allocs);
                total_allocs += 1;
                live.push((ptr, alloc.size()));
            }
            // Exact accounting.
            let expect_in_use: u64 = live.iter().map(|(_, s)| *s).sum();
            prop_assert_eq!(mem.in_use(), expect_in_use);
            prop_assert_eq!(mem.stats().live_allocations, live.len());
            prop_assert!(mem.peak() >= mem.in_use());
        }
        // No two live allocations overlap.
        let mut ranges: Vec<(u64, u64)> =
            live.iter().map(|(p, s)| (p.addr(), p.addr() + s)).collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        // Interior pointers resolve to their allocation.
        for (p, s) in &live {
            let probe = p.addr() + (s - 1);
            prop_assert_eq!(mem.containing(probe).unwrap().base(), *p);
        }
    }

    /// Parameter buffers round-trip arbitrary (value, width) sequences.
    #[test]
    fn param_buffer_roundtrip(vals in prop::collection::vec((any::<u64>(), any::<bool>()), 0..24)) {
        let parts: Vec<(u64, u32)> =
            vals.iter().map(|&(v, wide)| (v, if wide { 8 } else { 4 })).collect();
        let pb = ParamBuffer::from_parts(&parts);
        prop_assert_eq!(pb.param_count(), parts.len());
        for (i, &(v, w)) in parts.iter().enumerate() {
            prop_assert_eq!(pb.size_of(i), w);
            let expect = if w == 4 { v & 0xffff_ffff } else { v };
            prop_assert_eq!(pb.value(i), expect);
        }
    }

    /// Encoding through a signature agrees with `from_parts`.
    #[test]
    fn encode_matches_from_parts(vals in prop::collection::vec(any::<u64>(), 1..16)) {
        let kinds: Vec<ParamKind> = vals
            .iter()
            .enumerate()
            .map(|(i, _)| if i % 2 == 0 { ParamKind::PtrIn } else { ParamKind::Scalar4 })
            .collect();
        let sig = KernelSig::new(kinds.clone());
        let a = ParamBuffer::encode(&sig, &vals);
        let parts: Vec<(u64, u32)> =
            vals.iter().zip(&kinds).map(|(&v, k)| (v, k.width())).collect();
        let b = ParamBuffer::from_parts(&parts);
        prop_assert_eq!(a.as_bytes(), b.as_bytes());
    }

    /// The tokenizer round-trips arbitrary unicode strings.
    #[test]
    fn tokenizer_roundtrip(s in "\\PC{0,64}") {
        let (tok, _) = Tokenizer::load(8_000, &CostModel::default());
        let ids = tok.encode(&s);
        prop_assert_eq!(tok.decode(&ids), s.as_bytes());
    }

    /// Length samples respect their clamps for arbitrary parameters.
    #[test]
    fn length_sampler_bounds(
        mean in 1.0f64..5000.0,
        sigma in 0.1f64..2.5,
        seed in any::<u64>(),
    ) {
        let sampler = LengthSampler::new(mean, sigma, 8, 4096);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let v = sampler.sample(&mut rng);
            prop_assert!((8..=4096).contains(&v));
        }
    }

    /// SimDuration arithmetic: associativity with sums and saturating sub.
    #[test]
    fn duration_arithmetic(a in 0u64..(1 << 40), b in 0u64..(1 << 40)) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!((da - db).as_nanos(), a.saturating_sub(b));
        let total: SimDuration = vec![da, db, da].into_iter().sum();
        prop_assert_eq!(total.as_nanos(), 2 * a + b);
    }

    /// Topological order validity for arbitrary forward DAGs.
    #[test]
    fn topo_order_is_valid(
        n in 1usize..40,
        edge_picks in prop::collection::vec((any::<u16>(), any::<u16>()), 0..120),
    ) {
        let mut g = medusa_graph::CudaGraph::new();
        let sig = KernelSig::new(vec![ParamKind::Scalar4]);
        for i in 0..n {
            g.add_kernel_node(i as u64, ParamBuffer::encode(&sig, &[i as u64]), medusa_gpu::Work::NONE);
        }
        for (a, b) in edge_picks {
            let (a, b) = (a as usize % n, b as usize % n);
            if a < b {
                g.add_dependency(a, b).unwrap();
            }
        }
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (rank, &node) in order.iter().enumerate() {
            pos[node] = rank;
        }
        for &(s, d) in g.edges() {
            prop_assert!(pos[s] < pos[d], "edge ({s},{d}) violates order");
        }
    }

    /// Trace-based resolution always returns a live allocation containing
    /// the address, for arbitrary alloc/free/probe interleavings.
    #[test]
    fn trace_walker_resolution_soundness(
        ops in prop::collection::vec((1u64..64, any::<bool>()), 1..100),
    ) {
        use medusa::TraceWalker;
        let mut w = TraceWalker::new();
        let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (base, size, seq)
        let mut next_base = 0x1000u64;
        let mut seq = 0u64;
        for (size_units, free_instead) in ops {
            let size = size_units * 0x100;
            if free_instead && !live.is_empty() {
                let (base, _, _) = live.swap_remove((size_units % live.len() as u64) as usize);
                prop_assert!(w.on_free(base).is_some());
            } else {
                w.on_alloc(seq, next_base, size);
                live.push((next_base, size, seq));
                next_base += size;
                seq += 1;
            }
            for &(base, sz, sq) in &live {
                prop_assert_eq!(w.resolve(base + sz / 2), Some((sq, sz / 2)));
            }
        }
    }
}
