//! False-positive pointer speculation and its correction (paper §4, §8).
//!
//! The pointer/constant heuristic can misclassify an 8-byte constant whose
//! value happens to look like a device address. These tests inject exactly
//! that misclassification into a real artifact and check that the
//! validation forwarding detects it and the correction pass repairs it.

use medusa::{
    materialize_offline, ColdStart, ColdStartOptions, MaterializedState, ParamSpec, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec};
use medusa_model::ModelSpec;

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// Rewrites one genuine constant (the rotary kernel's 8-byte rope base) as
/// a speculative indirect pointer, as a prefix-heuristic false positive
/// would have.
fn poison(artifact: &mut MaterializedState) -> (usize, usize) {
    let target_seq = *artifact
        .labels
        .get("ws.positions")
        .expect("labelled buffer");
    let g = &mut artifact.graphs[0];
    for (ni, node) in g.nodes.iter_mut().enumerate() {
        if node.kernel.contains("rotary") {
            for (pi, p) in node.params.iter_mut().enumerate() {
                if let ParamSpec::Const { bytes } = p {
                    if bytes.len() == 8 {
                        let mut buf = [0u8; 8];
                        buf.copy_from_slice(bytes);
                        let raw = u64::from_le_bytes(buf);
                        *p = ParamSpec::IndirectPtr {
                            alloc_seq: target_seq,
                            offset: 0,
                            raw,
                        };
                        return (ni, pi);
                    }
                }
            }
        }
    }
    panic!("no 8-byte constant found to poison");
}

/// With validation enabled the false positive is detected and corrected
/// back to a constant; the restored graph then matches eager execution.
#[test]
fn validation_corrects_injected_false_positive() {
    let s = spec();
    let (mut artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 31).expect("offline");
    let (ni, pi) = poison(&mut artifact);
    // The pre-restore checksum check would reject the tampered copy before
    // correction gets a chance — skip it so the validation forwardings and
    // the correction pass are what run.
    let outcome = ColdStart::new(&s)
        .strategy(Strategy::Medusa)
        .artifact(&artifact)
        .validate_artifact(false)
        .validate_graphs(true)
        .seed(32)
        .run()
        .expect("correction must repair the artifact");
    assert!(outcome.fallback().is_none(), "repaired, not degraded");
    let (mut engine, _) = outcome.into_single();
    // Sanity: the corrected engine still decodes deterministically.
    let kv = engine.kv_view();
    medusa::reset_kv_state(&mut engine.rt, &kv).expect("reset");
    let out = medusa_model::decode_step_with_graph(
        &mut engine.rt,
        &engine.inst,
        &engine.graphs[0].1,
        1,
        40,
    )
    .expect("decode");
    assert_ne!(out.output, [0u8; 16]);
    let _ = (ni, pi);
}

/// Without validation, the poisoned speculation silently changes outputs —
/// the failure mode validation exists to catch.
#[test]
fn unvalidated_false_positive_corrupts_outputs() {
    let s = spec();
    let (artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 33).expect("offline");
    let mut poisoned = artifact.clone();
    poison(&mut poisoned);
    let opts = ColdStartOptions {
        seed: 34,
        ..Default::default()
    };
    let out_of = |a: &MaterializedState| {
        let (mut e, _) = ColdStart::new(&s)
            .strategy(Strategy::Medusa)
            .artifact(a)
            .validate_artifact(false)
            .options(opts)
            .run()
            .expect("restores without validation")
            .into_single();
        let kv = e.kv_view();
        medusa::reset_kv_state(&mut e.rt, &kv).expect("reset");
        medusa_model::decode_step_with_graph(&mut e.rt, &e.inst, &e.graphs[0].1, 1, 41)
            .expect("replays")
            .output
    };
    assert_ne!(out_of(&artifact), out_of(&poisoned));
}

/// An unmatchable poisoned pointer (dead allocation index) fails loudly at
/// restore time rather than silently — and the builder records exactly that
/// failure while degrading the cold start to the vanilla path.
#[test]
fn poisoned_pointer_to_dead_allocation_fails_restore() {
    let s = spec();
    let (mut artifact, _) =
        materialize_offline(&s, GpuSpec::a100_40gb(), CostModel::default(), 35).expect("offline");
    // Point at an allocation index that the replay frees (a profiling temp):
    // find a Free op target.
    let dead_seq = artifact
        .replay_ops
        .iter()
        .find_map(|op| match op {
            medusa::ReplayOp::Free { alloc_seq } => Some(*alloc_seq),
            _ => None,
        })
        .expect("replay contains frees");
    if let ParamSpec::IndirectPtr { alloc_seq, .. } = &mut artifact.graphs[0].nodes[0].params[0] {
        *alloc_seq = dead_seq;
    } else {
        panic!("expected first param of first node to be a pointer");
    }
    let outcome = ColdStart::new(&s)
        .strategy(Strategy::Medusa)
        .artifact(&artifact)
        .validate_artifact(false)
        .seed(36)
        .run()
        .expect("degrades to vanilla instead of erroring");
    assert_eq!(outcome.strategy_used(), Strategy::Vanilla);
    let fb = outcome.fallback().expect("restore failure recorded");
    assert_eq!(fb.reason, "unmatched_pointer", "{}", fb.detail);
}
