//! Fuzz-style workload properties over the event-driven fleet core.
//!
//! Randomized fleets (size, policy, fault rates, keep-alive) absorb
//! randomized bursty traces, and every run must uphold the liveness and
//! conservation invariants the differential gate cannot see:
//!
//! * **No deadlock** — the simulation always drains (the dispatch loop
//!   returns; a wedged run would spin or hang forever).
//! * **Request conservation** — `arrivals == completed + queued_at_end +
//!   in_flight_at_end`, exactly, for every seed.
//! * **No node stuck `Starting`** — when the run drains dry (not
//!   truncated at the drain horizon), every cold start either completed
//!   or was crashed back to `Cold`; nothing is left mid-start.
//! * **Nothing left behind on a dry drain** — a non-truncated run
//!   completed every arrival; no request is marooned in a queue.

use medusa::Strategy;
use medusa_gpu::SimDuration;
use medusa_serving::PerfModel;
use medusa_serving::{
    simulate_fleet, ClusterFaults, ClusterSpec, FetchPolicy, FleetOutcome, FleetProfile, Policy,
};
use medusa_workload::{ArrivalPattern, Request, TraceConfig};
use proptest::prelude::*;

/// Synthetic per-instance cost tables — milliseconds-scale so a whole
/// fuzz case simulates in well under a second of wall clock.
fn perf(strategy: Strategy, loading_ms: u64) -> PerfModel {
    PerfModel::from_tables(
        strategy,
        "fuzz-toy",
        SimDuration::from_millis(loading_ms),
        vec![1, 8, 32],
        vec![
            SimDuration::from_millis(4),
            SimDuration::from_millis(5),
            SimDuration::from_millis(7),
        ],
        vec![
            (100, SimDuration::from_millis(15)),
            (400, SimDuration::from_millis(40)),
            (2048, SimDuration::from_millis(80)),
        ],
    )
}

fn profile(medusa_side: bool) -> FleetProfile {
    if medusa_side {
        FleetProfile::from_perf(Strategy::Medusa, perf(Strategy::Medusa, 400))
            .with_fetch(SimDuration::from_millis(200))
            .with_degraded_loading(SimDuration::from_millis(1200))
    } else {
        FleetProfile::from_perf(Strategy::Vanilla, perf(Strategy::Vanilla, 1200))
    }
}

fn fleet(
    nodes: usize,
    cached: usize,
    keep_alive_s: f64,
    crash_pm: u32,
    regfail_pm: u32,
    seed: u64,
) -> ClusterSpec {
    let mut c = ClusterSpec::uniform(nodes)
        .with_cached_prefix(cached.min(nodes))
        .with_fetch_policy(FetchPolicy {
            timeout_s: 0.3,
            retry_budget: 2,
            backoff_base_s: 0.05,
            backoff_max_s: 0.4,
        })
        .with_faults(ClusterFaults {
            seed,
            registry_fail_per_mille: regfail_pm,
            node_crash_per_mille: crash_pm,
        });
    c.autoscaler.keep_alive_s = keep_alive_s;
    c.autoscaler.target_queue_depth = 2;
    c.max_running = 8;
    c
}

/// The shared postcondition bundle every fuzz case must satisfy.
fn assert_fleet_invariants(out: &FleetOutcome, trace: &[Request], label: &str) {
    assert_eq!(
        out.conservation_residual(),
        0,
        "{label}: arrivals != completed + queued + in-flight"
    );
    assert!(
        out.stats.events_processed > 0,
        "{label}: simulation processed no events"
    );
    if !out.stats.horizon_truncated {
        // The run drained dry: nothing may be left mid-flight anywhere.
        assert_eq!(
            out.stats.starting_nodes_at_end, 0,
            "{label}: node stuck in Starting after a dry drain"
        );
        assert_eq!(
            out.stats.queued_at_end + out.stats.in_flight_at_end,
            0,
            "{label}: requests marooned after a dry drain"
        );
        assert_eq!(
            out.stats.arrived,
            trace.len(),
            "{label}: dry drain but arrivals were dropped"
        );
        assert_eq!(
            out.report.completed,
            trace.len(),
            "{label}: dry drain but not every request completed"
        );
    } else {
        assert!(
            out.report.completed <= trace.len(),
            "{label}: more completions than offered requests"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bursty traffic against randomized fleets with crash and
    /// registry-failure injection: conservation and liveness hold for
    /// every (seed, shape, policy, fault-rate) draw.
    #[test]
    fn bursty_faulty_fleets_conserve_requests(
        seed in any::<u64>(),
        nodes in 1usize..8,
        cached in 0usize..8,
        rps in 2.0f64..30.0,
        keep_alive_s in 0.5f64..8.0,
        policy_idx in 0usize..3,
        crash_pm in 0u32..300,
        regfail_pm in 0u32..500,
        medusa_side in any::<bool>(),
    ) {
        let policy = Policy::ALL[policy_idx % Policy::ALL.len()];
        let cluster = fleet(nodes, cached, keep_alive_s, crash_pm, regfail_pm, seed);
        let trace = TraceConfig::sharegpt(rps, 20.0)
            .with_seed(seed ^ 0x5eed_f00d)
            .with_pattern(ArrivalPattern::sharegpt_bursty())
            .generate();
        let out = simulate_fleet(&profile(medusa_side), &cluster, policy, &trace);
        assert_fleet_invariants(&out, &trace, "bursty");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scale-to-zero churn: sparse arrivals against a keep-alive shorter
    /// than the inter-arrival gaps, so nodes cycle Warm → Cold → Warm
    /// constantly (with crashes layered on top). The churn must never
    /// wedge a node mid-start or lose a request.
    #[test]
    fn scale_to_zero_churn_never_wedges(
        seed in any::<u64>(),
        nodes in 1usize..5,
        rps in 0.2f64..2.0,
        keep_alive_s in 0.3f64..2.0,
        crash_pm in 0u32..300,
    ) {
        let cluster = fleet(nodes, nodes / 2, keep_alive_s, crash_pm, 250, seed);
        let trace = TraceConfig::sharegpt(rps, 40.0)
            .with_seed(seed ^ 0xc0ffee)
            .generate();
        let out = simulate_fleet(
            &profile(true),
            &cluster,
            Policy::ColdStartAware,
            &trace,
        );
        // Sparse load against a sub-second keep-alive must actually churn
        // (unless the trace happens to be empty).
        if !trace.is_empty() {
            prop_assert!(
                out.report.cold_starts >= 1,
                "churn workload produced no cold starts"
            );
        }
        assert_fleet_invariants(&out, &trace, "churn");
    }
}
