//! Property tests for the content-addressed chunk registry (DESIGN.md §15).
//!
//! Five contracts are pinned here, across materialization seeds, family
//! shapes, corruption sites, and fault rates:
//!
//! 1. **Chunking round-trips** — packing an artifact's MAF2 bytes into the
//!    [`ChunkStore`] and reassembling from the manifest reproduces the
//!    exact bytes, including across a store encode/decode hop.
//! 2. **Dedup is order-insensitive** — the store's dedup accounting
//!    (logical/stored bytes, unique chunks) and chunk population are a
//!    pure function of the packed *set*, not the packing order.
//! 3. **Templates instantiate losslessly** — factoring a family into a
//!    template and re-instantiating a member from its delta reproduces
//!    the direct capture's sealed `content_checksum()` and MAF2 bytes.
//! 4. **Damage surfaces as typed errors** — corrupting or truncating the
//!    sealed store encoding yields [`MedusaError`] variants, never a
//!    panic, and a decode that slips past the seal still fails per-chunk
//!    verification rather than returning wrong bytes.
//! 5. **Per-chunk retries honor the budget** — under registry fault
//!    injection the fleet's retry counter is bounded by
//!    `starts × budget × chunks`, a zero fault rate retries nothing, and
//!    a total outage degrades every start without touching the registry
//!    counters.

use medusa::{
    materialize_offline, ArtifactTemplate, ChunkStore, MaterializedState, MedusaError, Strategy,
};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, ClusterFaults, ClusterSpec, FetchPolicy, FetchUnit, FleetProfile,
    ModelManifest, PerfModel, Policy, RegistryCatalog, RegistryMode,
};
use medusa_workload::TraceConfig;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock};

fn spec() -> ModelSpec {
    ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model")
}

/// The offline phase dominates test time, so artifacts are materialized
/// once per seed and shared across property cases.
fn single(seed: u64) -> MaterializedState {
    static POOL: OnceLock<Mutex<HashMap<u64, MaterializedState>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().expect("artifact pool");
    pool.entry(seed)
        .or_insert_with(|| {
            materialize_offline(&spec(), GpuSpec::a100_40gb(), CostModel::default(), seed)
                .expect("offline phase")
                .0
        })
        .clone()
}

/// MAF2 bytes of a family of `members` variants derived from one base
/// capture (memoized per seed — `derive_variant` + `instantiate` are cheap
/// next to materialization, but encoding is not free either).
fn family_bytes(seed: u64, members: u32) -> Vec<Vec<u8>> {
    type FamilyPool = Mutex<HashMap<(u64, u32), Vec<Vec<u8>>>>;
    static POOL: OnceLock<FamilyPool> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().expect("family pool");
    pool.entry((seed, members))
        .or_insert_with(|| {
            let base = single(seed);
            let (template, base_delta) =
                ArtifactTemplate::extract(std::slice::from_ref(&base), "prop-family")
                    .expect("family extraction");
            (0..members)
                .flat_map(|m| {
                    let delta = if m == 0 {
                        base_delta.clone()
                    } else {
                        base_delta.derive_variant(&format!("prop-v{m}"), seed ^ u64::from(m))
                    };
                    template
                        .instantiate(&delta)
                        .expect("member instantiation")
                        .into_iter()
                        .map(|s| s.to_maf2().expect("member encoding"))
                })
                .collect()
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pack → assemble is the identity on MAF2 bytes, and survives a
    /// store encode/decode hop: chunking never loses or reorders a byte.
    #[test]
    fn chunk_roundtrip_is_byte_identical(seed in 1u64..4) {
        let bytes = single(seed).to_maf2().expect("encode");
        let mut store = ChunkStore::new();
        let manifest = store.pack(&bytes).expect("pack");
        prop_assert_eq!(manifest.total_bytes, bytes.len() as u64);
        let rebuilt = store.assemble(&manifest).expect("assemble");
        prop_assert_eq!(&rebuilt, &bytes, "assembled bytes diverged from the packed original");
        // The sealed on-disk encoding preserves the same identity.
        let thawed = ChunkStore::decode(&store.encode()).expect("store round-trip");
        let again = thawed.assemble(&manifest).expect("assemble from thawed store");
        prop_assert_eq!(&again, &bytes, "store encode/decode corrupted a chunk");
    }

    /// Dedup accounting is a function of the packed set, not its order:
    /// any permutation of a family yields the same logical/stored bytes,
    /// the same unique-chunk count, and the same chunk population.
    #[test]
    fn dedup_accounting_is_order_insensitive(
        seed in 1u64..3,
        members in 2u32..4,
        shuffle_seed in any::<u64>(),
    ) {
        let arts = family_bytes(seed, members);
        let mut order: Vec<usize> = (0..arts.len()).collect();
        // Deterministic Fisher–Yates off the drawn seed (proptest shrinks it).
        let mut s = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut forward = ChunkStore::new();
        for a in &arts {
            forward.pack(a).expect("pack forward");
        }
        let mut shuffled = ChunkStore::new();
        for &i in &order {
            shuffled.pack(&arts[i]).expect("pack shuffled");
        }
        prop_assert_eq!(forward.dedup_stats(), shuffled.dedup_stats());
        let digests = |st: &ChunkStore| st.chunk_digests().into_iter().collect::<BTreeSet<_>>();
        prop_assert_eq!(digests(&forward), digests(&shuffled));
        // A real family must actually share chunks for dedup to mean
        // anything — the stats ratio reflects cross-member sharing.
        prop_assert!(forward.dedup_stats().stored_bytes < forward.dedup_stats().logical_bytes);
    }

    /// Template instantiation is lossless: a member rebuilt from
    /// `(template, delta)` carries the direct capture's sealed content
    /// checksum and encodes to byte-identical MAF2.
    #[test]
    fn template_instantiation_matches_direct_capture(seed in 1u64..4) {
        let base = single(seed);
        let (template, delta) =
            ArtifactTemplate::extract(std::slice::from_ref(&base), "prop-identity")
                .expect("extract");
        let rebuilt = template.instantiate(&delta).expect("instantiate");
        prop_assert_eq!(rebuilt.len(), 1);
        prop_assert_eq!(
            rebuilt[0].content_checksum(),
            base.content_checksum(),
            "instantiated member's sealed checksum diverged from the direct capture"
        );
        let direct = base.to_maf2().expect("encode direct");
        let via_template = rebuilt[0].to_maf2().expect("encode instantiated");
        prop_assert_eq!(&via_template, &direct);
    }

    /// Flipping any byte of — or truncating — the sealed store encoding
    /// yields a typed [`MedusaError`], never a panic; and when the flip
    /// lands inside chunk data past the seal check, per-chunk
    /// verification still refuses to hand back wrong bytes.
    #[test]
    fn damaged_store_yields_typed_errors_never_panics(
        seed in 1u64..3,
        site in any::<u64>(),
        flip in 1u8..255,
        truncate in any::<bool>(),
    ) {
        let bytes = single(seed).to_maf2().expect("encode");
        let mut store = ChunkStore::new();
        let manifest = store.pack(&bytes).expect("pack");
        let mut sealed = store.encode();
        let i = (site % sealed.len() as u64) as usize;
        if truncate {
            sealed.truncate(i);
        } else {
            sealed[i] ^= flip;
        }
        match ChunkStore::decode(&sealed) {
            Err(
                MedusaError::ArtifactCorrupt { .. }
                | MedusaError::ChecksumMismatch { .. }
                | MedusaError::WeightStreamTruncated { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
            Ok(thawed) => {
                // The seal missed the damage (flip cancelled out or hit
                // redundant framing): the store must still either verify
                // every chunk or fail typed — wrong bytes are the one
                // unacceptable outcome.
                if let Ok(rebuilt) = thawed.assemble(&manifest) {
                    prop_assert_eq!(&rebuilt, &bytes, "damaged store returned wrong bytes");
                }
            }
        }
    }
}

/// Synthetic millisecond-scale fleet profile for the retry properties
/// (real measured profiles would make each fuzz case cost seconds).
fn retry_profile() -> FleetProfile {
    let perf = PerfModel::from_tables(
        Strategy::Medusa,
        "retry-toy",
        SimDuration::from_millis(50),
        vec![1, 8],
        vec![SimDuration::from_millis(4), SimDuration::from_millis(6)],
        vec![
            (100, SimDuration::from_millis(10)),
            (2048, SimDuration::from_millis(40)),
        ],
    );
    FleetProfile::from_perf(Strategy::Medusa, perf)
        .with_fetch(SimDuration::from_millis(200))
        .with_degraded_loading(SimDuration::from_millis(800))
}

/// A synthetic chunked catalog: `models` manifests of `chunks` units each,
/// digests disjoint across models so every first fetch is all misses.
fn retry_catalog(models: u32, chunks: u32) -> RegistryCatalog {
    RegistryCatalog {
        models: (0..models)
            .map(|m| ModelManifest {
                units: (0..chunks)
                    .map(|k| FetchUnit {
                        digest: (u64::from(m) << 32) | 0xfa17_0000 | u64::from(k),
                        bytes: 1 << 20,
                    })
                    .collect(),
            })
            .collect(),
    }
}

fn retry_cluster(catalog: RegistryCatalog, budget: u32, fail_pm: u32, seed: u64) -> ClusterSpec {
    let mut c = ClusterSpec::uniform(2)
        .with_fetch_policy(FetchPolicy {
            timeout_s: 0.2,
            retry_budget: budget,
            backoff_base_s: 0.05,
            backoff_max_s: 0.4,
        })
        .with_faults(ClusterFaults {
            seed,
            registry_fail_per_mille: fail_pm,
            node_crash_per_mille: 0,
        })
        .with_registry_mode(RegistryMode::ContentAddressed(catalog));
    c.autoscaler.keep_alive_s = 0.5;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-chunk retries stay within the fetch policy's budget: across
    /// random fault rates the global retry counter never exceeds
    /// `starts × budget × chunks-per-manifest`, requests are conserved,
    /// and a zero fault rate retries and degrades nothing.
    #[test]
    fn per_chunk_retries_honor_the_budget(
        seed in any::<u64>(),
        models in 1u32..4,
        chunks in 1u32..6,
        budget in 0u32..4,
        fail_pm in 0u32..900,
        rps in 0.5f64..4.0,
    ) {
        let cluster = retry_cluster(retry_catalog(models, chunks), budget, fail_pm, seed);
        let trace = TraceConfig::sharegpt(rps, 20.0)
            .with_seed(seed ^ 0x9e77)
            .with_models(medusa_workload::ModelMix::zipf(models, 1.0))
            .generate();
        let out = simulate_fleet(&retry_profile(), &cluster, Policy::ColdStartAware, &trace);
        prop_assert_eq!(out.conservation_residual(), 0, "requests leaked under chunk faults");
        let starts = out.report.cold_starts + out.report.degraded_cold_starts;
        prop_assert!(
            out.report.fetch_retries <= starts * budget * chunks,
            "retries {} exceed starts {} x budget {} x chunks {}",
            out.report.fetch_retries, starts, budget, chunks
        );
        if fail_pm == 0 {
            prop_assert_eq!(out.report.fetch_retries, 0);
            prop_assert_eq!(out.report.degraded_cold_starts, 0);
        }
    }

    /// A total registry outage degrades every start to the vanilla path:
    /// each one burns exactly `budget` retries on its first chunk, and the
    /// registry moves no bytes at all.
    #[test]
    fn total_outage_degrades_every_start_and_moves_no_bytes(
        seed in any::<u64>(),
        budget in 0u32..4,
    ) {
        let cluster = retry_cluster(retry_catalog(2, 4), budget, 1000, seed);
        let trace = TraceConfig::sharegpt(2.0, 15.0)
            .with_seed(seed ^ 0x07a6e)
            .with_models(medusa_workload::ModelMix::zipf(2, 1.0))
            .generate();
        let out = simulate_fleet(&retry_profile(), &cluster, Policy::ColdStartAware, &trace);
        prop_assert_eq!(out.conservation_residual(), 0);
        let reg = out.report.registry.expect("cas mode reports registry counters");
        prop_assert_eq!(reg.bytes_fetched, 0, "an outage must not move bytes");
        prop_assert_eq!(reg.chunk_misses, 0);
        if out.report.cold_starts > 0 {
            prop_assert_eq!(out.report.degraded_cold_starts, out.report.cold_starts);
            prop_assert_eq!(out.report.fetch_retries, out.report.cold_starts * budget);
        }
    }
}
