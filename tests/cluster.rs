//! Fleet-layer integration tests: scheduler policies, autoscaling, and the
//! determinism contract of the cluster simulator, driven end-to-end with
//! profiles measured from the real per-instance pipeline
//! ([`FleetProfile::measure`] runs the `medusa::ColdStart` builder) and
//! generated workload traces.

use medusa::{Parallelism, Strategy};
use medusa_gpu::{CostModel, GpuSpec, SimDuration};
use medusa_model::ModelSpec;
use medusa_serving::{
    simulate_fleet, simulate_fleet_traced, ClusterFaults, ClusterSpec, FetchPolicy, FleetProfile,
    PerfModel, Policy,
};
use medusa_telemetry::Registry;
use medusa_workload::{ArrivalPattern, TraceConfig};

fn measured(strategy: Strategy) -> FleetProfile {
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    FleetProfile::measure(
        strategy,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        1,
        Parallelism::Overlapped,
        11,
    )
    .expect("fleet profile")
}

fn synthetic(loading_ms: u64, fetch_ms: u64) -> FleetProfile {
    let perf = PerfModel::from_tables(
        Strategy::Medusa,
        "toy",
        SimDuration::from_millis(loading_ms),
        vec![1, 8, 32],
        vec![
            SimDuration::from_millis(5),
            SimDuration::from_millis(6),
            SimDuration::from_millis(8),
        ],
        vec![
            (100, SimDuration::from_millis(20)),
            (200, SimDuration::from_millis(40)),
        ],
    );
    FleetProfile::from_perf(Strategy::Medusa, perf).with_fetch(SimDuration::from_millis(fetch_ms))
}

fn bursty_trace(seed: u64) -> Vec<medusa_workload::Request> {
    TraceConfig::sharegpt(8.0, 45.0)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::sharegpt_bursty())
        .generate()
}

/// Same seed ⇒ byte-identical report JSON and byte-identical telemetry
/// exports (both formats) — the contract the CI perf gate stands on.
#[test]
fn same_seed_runs_are_byte_identical() {
    let profile = measured(Strategy::Medusa);
    let cluster = ClusterSpec::uniform(4).with_cached_prefix(2);
    let trace = bursty_trace(42);
    let run = || {
        let tele = Registry::new();
        let out = simulate_fleet_traced(
            &profile,
            &cluster,
            Policy::ColdStartAware,
            &trace,
            Some(&tele),
        );
        let snap = tele.snapshot();
        (
            out.report.to_json(),
            medusa_telemetry::export::prometheus::render(&snap),
            medusa_telemetry::export::chrome::render(&snap),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "report JSON must be byte-identical");
    assert_eq!(a.1, b.1, "prometheus export must be byte-identical");
    assert_eq!(a.2, b.2, "chrome trace must be byte-identical");
}

/// Different seeds produce different traces — and the report's embedded
/// fingerprint tells them apart.
#[test]
fn different_seeds_are_distinguishable() {
    let profile = synthetic(500, 200);
    let cluster = ClusterSpec::uniform(2);
    let a = simulate_fleet(&profile, &cluster, Policy::LeastLoaded, &bursty_trace(1));
    let b = simulate_fleet(&profile, &cluster, Policy::LeastLoaded, &bursty_trace(2));
    assert_ne!(a.report.trace_fingerprint, b.report.trace_fingerprint);
}

/// Under a bursty trace, cold-start-aware scheduling pays strictly fewer
/// cold starts than least-loaded, which fans bursts out across the fleet
/// and wakes workers that a packing policy never needs.
#[test]
fn coldstart_aware_strictly_beats_least_loaded_on_cold_starts() {
    let profile = measured(Strategy::Medusa);
    let cluster = ClusterSpec::uniform(4);
    let trace = bursty_trace(42);
    let ll = simulate_fleet(&profile, &cluster, Policy::LeastLoaded, &trace);
    let ca = simulate_fleet(&profile, &cluster, Policy::ColdStartAware, &trace);
    assert!(
        ca.report.cold_starts < ll.report.cold_starts,
        "coldstart-aware ({}) must beat least-loaded ({})",
        ca.report.cold_starts,
        ll.report.cold_starts
    );
    assert_eq!(ll.report.completed, ll.report.offered, "no request lost");
    assert_eq!(ca.report.completed, ca.report.offered, "no request lost");
}

/// Scale-to-zero then re-warm round-trips: the instance is torn down after
/// the keep-alive, but the node-local artifact cache survives, so the
/// second cold start skips the registry fetch.
#[test]
fn scale_to_zero_then_rewarm_round_trips() {
    let profile = synthetic(500, 300);
    let mut cluster = ClusterSpec::uniform(1);
    cluster.autoscaler.keep_alive_s = 5.0;
    let mk = |id: u64, at_ms: u64| medusa_workload::Request {
        id,
        arrival_ns: at_ms * 1_000_000,
        prompt_tokens: 100,
        output_tokens: 1,
        model: 0,
    };
    let trace = vec![mk(0, 0), mk(1, 30_000)];
    let out = simulate_fleet(&profile, &cluster, Policy::ColdStartAware, &trace);
    assert_eq!(out.report.cold_starts, 2, "node retired between requests");
    assert!(out.report.scale_to_zero_events >= 1);
    // Miss: fetch 300 + load 500 + prefill 20. Re-warm: load 500 + 20.
    assert_eq!(out.ttfts[0], SimDuration::from_millis(820));
    assert_eq!(out.ttfts[1], SimDuration::from_millis(520));
    assert!(out.report.nodes[0].cached_at_end);
}

/// tp>1 workers cost `tp`× the aggregate rank work for the same wall-clock
/// service, and the measured tp=2 profile's cold-start work exceeds its
/// makespan (ranks restore concurrently but all burn cycles).
#[test]
fn tp_workers_aggregate_per_rank_work() {
    let spec = ModelSpec::by_name("Qwen1.5-0.5B").expect("catalog model");
    let tp2 = FleetProfile::measure(
        Strategy::Medusa,
        &spec,
        GpuSpec::a100_40gb(),
        CostModel::default(),
        2,
        Parallelism::Overlapped,
        11,
    )
    .expect("tp2 profile");
    assert!(
        tp2.coldstart_work > tp2.perf.loading,
        "aggregate rank work {} must exceed the overlapped makespan {}",
        tp2.coldstart_work.as_nanos(),
        tp2.perf.loading.as_nanos()
    );
    let trace = vec![medusa_workload::Request {
        id: 0,
        arrival_ns: 0,
        prompt_tokens: 100,
        output_tokens: 4,
        model: 0,
    }];
    let one = simulate_fleet(
        &tp2,
        &ClusterSpec::uniform(1),
        Policy::ColdStartAware,
        &trace,
    );
    let two = simulate_fleet(
        &tp2,
        &ClusterSpec::uniform(1).with_tp(2),
        Policy::ColdStartAware,
        &trace,
    );
    let (n1, n2) = (&one.report.nodes[0], &two.report.nodes[0]);
    assert_eq!(n1.busy_ns, n2.busy_ns, "same wall-clock serving time");
    // Serving work doubles at tp=2; cold-start work is the profile's
    // aggregate either way. So the tp=2 node's total strictly exceeds the
    // tp=1 node's by exactly one extra copy of the serving time.
    assert_eq!(n2.work_ns, n1.work_ns + n1.busy_ns);
    assert_eq!(one.ttfts, two.ttfts, "wall-clock TTFT is tp-invariant");
}

/// The autoscaler wakes extra nodes when the backlog exceeds the
/// per-live-node target queue depth, and respects scale_to_zero = false.
#[test]
fn autoscaler_knobs_shape_the_fleet() {
    let profile = synthetic(500, 0);
    let mut cluster = ClusterSpec::uniform(4);
    cluster.autoscaler.target_queue_depth = 2;
    cluster.max_running = 2;
    let trace: Vec<medusa_workload::Request> = (0..24)
        .map(|i| medusa_workload::Request {
            id: i,
            arrival_ns: 0,
            prompt_tokens: 100,
            output_tokens: 5,
            model: 0,
        })
        .collect();
    let out = simulate_fleet(&profile, &cluster, Policy::ColdStartAware, &trace);
    assert!(
        out.report.cold_starts >= 2,
        "backlog must wake extra nodes: {:?}",
        out.report
    );

    let mut pinned = ClusterSpec::uniform(1);
    pinned.autoscaler.scale_to_zero = false;
    pinned.autoscaler.keep_alive_s = 1.0;
    let sparse = vec![
        medusa_workload::Request {
            id: 0,
            arrival_ns: 0,
            prompt_tokens: 100,
            output_tokens: 1,
            model: 0,
        },
        medusa_workload::Request {
            id: 1,
            arrival_ns: 20_000_000_000,
            prompt_tokens: 100,
            output_tokens: 1,
            model: 0,
        },
    ];
    let out = simulate_fleet(&profile, &pinned, Policy::ColdStartAware, &sparse);
    assert_eq!(out.report.scale_to_zero_events, 0, "scale-to-zero disabled");
    assert_eq!(out.report.cold_starts, 1, "warm node is reused");
}

/// End-to-end Medusa vs vanilla with measured profiles: on the same burst
/// trace with pre-seeded caches, the Medusa fleet's TTFT tail beats the
/// vanilla fleet's (the fleet-level payoff of materialization).
#[test]
fn measured_medusa_fleet_beats_vanilla_on_the_tail() {
    let medusa = measured(Strategy::Medusa);
    let vanilla = measured(Strategy::Vanilla);
    assert!(
        medusa.perf.loading < vanilla.perf.loading,
        "materialized restore must load faster than a vanilla reload"
    );
    let cluster = ClusterSpec::uniform(4).with_cached_prefix(4);
    let trace = bursty_trace(42);
    let m = simulate_fleet(&medusa, &cluster, Policy::ColdStartAware, &trace);
    let v = simulate_fleet(&vanilla, &cluster, Policy::ColdStartAware, &trace);
    assert!(
        m.report.ttft_p99_us < v.report.ttft_p99_us,
        "medusa p99 {} µs must beat vanilla p99 {} µs",
        m.report.ttft_p99_us,
        v.report.ttft_p99_us
    );
}

/// A flaky artifact registry (30% of fetches time out) costs the Medusa
/// fleet retries, backoff, and even budget-exhausted degraded vanilla-path
/// starts on its cache-miss nodes — and the fleet *still* beats a clean
/// vanilla fleet on makespan and the TTFT tail, because the cached nodes'
/// fast materialized restores carry the ramp and the re-warm (§6/§7 at
/// fleet scale).
#[test]
fn flaky_registry_medusa_still_beats_vanilla_end_to_end() {
    let medusa = measured(Strategy::Medusa);
    let vanilla = measured(Strategy::Vanilla);
    // A 100 rps ramp deep enough that the backlog outruns the two cached
    // nodes' `max_running` and the autoscaler wakes the uncached nodes —
    // whose registry fetches the fault plan then fails — followed by a
    // quiet period past the keep-alive and one trailing request that
    // re-warms the scaled-to-zero fleet from the node-local cache.
    let mk = |id: u64, arrival_ns: u64| medusa_workload::Request {
        id,
        arrival_ns,
        prompt_tokens: 100,
        output_tokens: 4,
        model: 0,
    };
    let mut trace: Vec<medusa_workload::Request> =
        (0..8000).map(|i| mk(i, i * 10_000_000)).collect();
    trace.push(mk(8000, 95_000_000_000));
    let cluster = |faults| {
        let mut c = ClusterSpec::uniform(4)
            .with_cached_prefix(2)
            // Gentle timeouts keep each failed attempt cheap — the §7
            // resilience policy is what makes a 30%-flaky registry
            // survivable at all.
            .with_fetch_policy(FetchPolicy {
                timeout_s: 0.15,
                retry_budget: 3,
                backoff_base_s: 0.05,
                backoff_max_s: 0.2,
            })
            .with_faults(faults);
        c.autoscaler.keep_alive_s = 5.0;
        c
    };
    let healthy = cluster(ClusterFaults::default());
    let flaky = cluster(ClusterFaults {
        seed: 0,
        registry_fail_per_mille: 300,
        node_crash_per_mille: 0,
    });
    let v = simulate_fleet(&vanilla, &healthy, Policy::ColdStartAware, &trace);
    let m = simulate_fleet(&medusa, &flaky, Policy::ColdStartAware, &trace);
    // The scenario provably exercises the resilience path: retries rolled,
    // and at least one start exhausted its budget and degraded.
    assert!(m.report.fetch_retries > 0, "registry failures must roll");
    assert!(
        m.report.degraded_cold_starts > 0,
        "an exhausted budget must degrade a start to the vanilla path"
    );
    assert_eq!(m.report.completed, m.report.offered, "no request lost");
    assert_eq!(v.report.completed, v.report.offered, "no request lost");
    assert!(
        m.report.makespan_ns < v.report.makespan_ns,
        "medusa makespan {} ns must beat vanilla {} ns despite the flaky registry",
        m.report.makespan_ns,
        v.report.makespan_ns
    );
    assert!(
        m.report.ttft_p99_us < v.report.ttft_p99_us,
        "medusa p99 {} µs must beat vanilla p99 {} µs despite the flaky registry",
        m.report.ttft_p99_us,
        v.report.ttft_p99_us
    );
}
