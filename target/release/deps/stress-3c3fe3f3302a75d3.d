/root/repo/target/release/deps/stress-3c3fe3f3302a75d3.d: tests/stress.rs

/root/repo/target/release/deps/stress-3c3fe3f3302a75d3: tests/stress.rs

tests/stress.rs:
