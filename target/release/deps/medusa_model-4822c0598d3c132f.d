/root/repo/target/release/deps/medusa_model-4822c0598d3c132f.d: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

/root/repo/target/release/deps/libmedusa_model-4822c0598d3c132f.rlib: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

/root/repo/target/release/deps/libmedusa_model-4822c0598d3c132f.rmeta: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

crates/model/src/lib.rs:
crates/model/src/forward.rs:
crates/model/src/kernels.rs:
crates/model/src/schedule.rs:
crates/model/src/spec.rs:
crates/model/src/structure.rs:
crates/model/src/tokenizer.rs:
crates/model/src/weights.rs:
