/root/repo/target/release/deps/serde_json-fa00fab5b1655adb.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fa00fab5b1655adb.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fa00fab5b1655adb.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
