/root/repo/target/release/deps/micro-160ccf0b2511fbf4.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-160ccf0b2511fbf4: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
