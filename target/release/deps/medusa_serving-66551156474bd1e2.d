/root/repo/target/release/deps/medusa_serving-66551156474bd1e2.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/release/deps/libmedusa_serving-66551156474bd1e2.rlib: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/release/deps/libmedusa_serving-66551156474bd1e2.rmeta: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
