/root/repo/target/release/deps/medusa_kvcache-90567056f0dd0343.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/release/deps/libmedusa_kvcache-90567056f0dd0343.rlib: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/release/deps/libmedusa_kvcache-90567056f0dd0343.rmeta: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
