/root/repo/target/release/deps/medusa_cli-cb00fd574a712b37.d: crates/core/src/bin/medusa-cli.rs

/root/repo/target/release/deps/medusa_cli-cb00fd574a712b37: crates/core/src/bin/medusa-cli.rs

crates/core/src/bin/medusa-cli.rs:
