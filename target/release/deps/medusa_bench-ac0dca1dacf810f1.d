/root/repo/target/release/deps/medusa_bench-ac0dca1dacf810f1.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libmedusa_bench-ac0dca1dacf810f1.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libmedusa_bench-ac0dca1dacf810f1.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
