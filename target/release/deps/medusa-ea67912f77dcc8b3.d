/root/repo/target/release/deps/medusa-ea67912f77dcc8b3.d: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libmedusa-ea67912f77dcc8b3.rlib: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

/root/repo/target/release/deps/libmedusa-ea67912f77dcc8b3.rmeta: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/artifact.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline/analysis.rs:
crates/core/src/offline/capture.rs:
crates/core/src/online/kernels.rs:
crates/core/src/online/replay.rs:
crates/core/src/online/validate.rs:
crates/core/src/pipeline.rs:
crates/core/src/tp.rs:
crates/core/src/trace.rs:
