/root/repo/target/release/deps/medusa_gpu-63c2a48691599778.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs

/root/repo/target/release/deps/libmedusa_gpu-63c2a48691599778.rlib: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs

/root/repo/target/release/deps/libmedusa_gpu-63c2a48691599778.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/error.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/library.rs:
crates/gpu/src/memory.rs:
crates/gpu/src/process.rs:
crates/gpu/src/storage.rs:
crates/gpu/src/stream.rs:
