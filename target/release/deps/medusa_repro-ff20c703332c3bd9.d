/root/repo/target/release/deps/medusa_repro-ff20c703332c3bd9.d: src/lib.rs

/root/repo/target/release/deps/libmedusa_repro-ff20c703332c3bd9.rlib: src/lib.rs

/root/repo/target/release/deps/libmedusa_repro-ff20c703332c3bd9.rmeta: src/lib.rs

src/lib.rs:
