/root/repo/target/release/deps/medusa_graph-0d5f38e34f0760e3.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/release/deps/libmedusa_graph-0d5f38e34f0760e3.rlib: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/release/deps/libmedusa_graph-0d5f38e34f0760e3.rmeta: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
