/root/repo/target/release/deps/repro-205b5af217b527e2.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-205b5af217b527e2: crates/bench/src/main.rs

crates/bench/src/main.rs:
