/root/repo/target/release/deps/proptest-1a9d332fdf6f7dbe.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1a9d332fdf6f7dbe.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1a9d332fdf6f7dbe.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
