/root/repo/target/release/deps/medusa_workload-7d4d872fecaeb6ed.d: crates/workload/src/lib.rs

/root/repo/target/release/deps/libmedusa_workload-7d4d872fecaeb6ed.rlib: crates/workload/src/lib.rs

/root/repo/target/release/deps/libmedusa_workload-7d4d872fecaeb6ed.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
