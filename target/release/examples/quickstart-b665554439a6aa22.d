/root/repo/target/release/examples/quickstart-b665554439a6aa22.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b665554439a6aa22: examples/quickstart.rs

examples/quickstart.rs:
