/root/repo/target/debug/libmedusa_workload.rlib: /root/repo/crates/workload/src/lib.rs /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
