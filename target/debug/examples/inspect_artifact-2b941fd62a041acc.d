/root/repo/target/debug/examples/inspect_artifact-2b941fd62a041acc.d: examples/inspect_artifact.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_artifact-2b941fd62a041acc.rmeta: examples/inspect_artifact.rs Cargo.toml

examples/inspect_artifact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
