/root/repo/target/debug/examples/quickstart-62ffc9a85651b475.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-62ffc9a85651b475: examples/quickstart.rs

examples/quickstart.rs:
