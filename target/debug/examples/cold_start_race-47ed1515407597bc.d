/root/repo/target/debug/examples/cold_start_race-47ed1515407597bc.d: examples/cold_start_race.rs Cargo.toml

/root/repo/target/debug/examples/libcold_start_race-47ed1515407597bc.rmeta: examples/cold_start_race.rs Cargo.toml

examples/cold_start_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
