/root/repo/target/debug/examples/cold_start_race-476e41299c10463d.d: examples/cold_start_race.rs

/root/repo/target/debug/examples/cold_start_race-476e41299c10463d: examples/cold_start_race.rs

examples/cold_start_race.rs:
