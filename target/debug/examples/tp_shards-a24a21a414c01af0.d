/root/repo/target/debug/examples/tp_shards-a24a21a414c01af0.d: examples/tp_shards.rs

/root/repo/target/debug/examples/tp_shards-a24a21a414c01af0: examples/tp_shards.rs

examples/tp_shards.rs:
