/root/repo/target/debug/examples/cold_start_race-5df6970dbb745bb5.d: examples/cold_start_race.rs

/root/repo/target/debug/examples/cold_start_race-5df6970dbb745bb5: examples/cold_start_race.rs

examples/cold_start_race.rs:
