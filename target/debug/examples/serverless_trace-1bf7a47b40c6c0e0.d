/root/repo/target/debug/examples/serverless_trace-1bf7a47b40c6c0e0.d: examples/serverless_trace.rs

/root/repo/target/debug/examples/serverless_trace-1bf7a47b40c6c0e0: examples/serverless_trace.rs

examples/serverless_trace.rs:
