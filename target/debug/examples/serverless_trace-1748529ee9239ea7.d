/root/repo/target/debug/examples/serverless_trace-1748529ee9239ea7.d: examples/serverless_trace.rs Cargo.toml

/root/repo/target/debug/examples/libserverless_trace-1748529ee9239ea7.rmeta: examples/serverless_trace.rs Cargo.toml

examples/serverless_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
