/root/repo/target/debug/examples/serverless_trace-4fc6276ce479e051.d: examples/serverless_trace.rs

/root/repo/target/debug/examples/serverless_trace-4fc6276ce479e051: examples/serverless_trace.rs

examples/serverless_trace.rs:
