/root/repo/target/debug/examples/inspect_artifact-a3e4a071fd044643.d: examples/inspect_artifact.rs

/root/repo/target/debug/examples/inspect_artifact-a3e4a071fd044643: examples/inspect_artifact.rs

examples/inspect_artifact.rs:
