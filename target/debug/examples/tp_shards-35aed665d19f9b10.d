/root/repo/target/debug/examples/tp_shards-35aed665d19f9b10.d: examples/tp_shards.rs Cargo.toml

/root/repo/target/debug/examples/libtp_shards-35aed665d19f9b10.rmeta: examples/tp_shards.rs Cargo.toml

examples/tp_shards.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
