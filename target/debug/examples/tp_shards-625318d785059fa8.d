/root/repo/target/debug/examples/tp_shards-625318d785059fa8.d: examples/tp_shards.rs

/root/repo/target/debug/examples/tp_shards-625318d785059fa8: examples/tp_shards.rs

examples/tp_shards.rs:
