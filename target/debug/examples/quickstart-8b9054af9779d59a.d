/root/repo/target/debug/examples/quickstart-8b9054af9779d59a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8b9054af9779d59a: examples/quickstart.rs

examples/quickstart.rs:
