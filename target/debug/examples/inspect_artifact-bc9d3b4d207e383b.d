/root/repo/target/debug/examples/inspect_artifact-bc9d3b4d207e383b.d: examples/inspect_artifact.rs

/root/repo/target/debug/examples/inspect_artifact-bc9d3b4d207e383b: examples/inspect_artifact.rs

examples/inspect_artifact.rs:
