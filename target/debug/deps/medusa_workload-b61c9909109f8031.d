/root/repo/target/debug/deps/medusa_workload-b61c9909109f8031.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libmedusa_workload-b61c9909109f8031.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libmedusa_workload-b61c9909109f8031.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
