/root/repo/target/debug/deps/medusa_repro-b30004e5481c1765.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_repro-b30004e5481c1765.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
