/root/repo/target/debug/deps/medusa_workload-f5e7fb6494381f4f.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libmedusa_workload-f5e7fb6494381f4f.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libmedusa_workload-f5e7fb6494381f4f.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
