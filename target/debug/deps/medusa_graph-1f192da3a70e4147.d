/root/repo/target/debug/deps/medusa_graph-1f192da3a70e4147.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/medusa_graph-1f192da3a70e4147: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
