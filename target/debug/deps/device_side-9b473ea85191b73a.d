/root/repo/target/debug/deps/device_side-9b473ea85191b73a.d: tests/device_side.rs

/root/repo/target/debug/deps/device_side-9b473ea85191b73a: tests/device_side.rs

tests/device_side.rs:
