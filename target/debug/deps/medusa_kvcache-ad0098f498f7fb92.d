/root/repo/target/debug/deps/medusa_kvcache-ad0098f498f7fb92.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/libmedusa_kvcache-ad0098f498f7fb92.rlib: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/libmedusa_kvcache-ad0098f498f7fb92.rmeta: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
