/root/repo/target/debug/deps/repro-dbde05b9cb136ae6.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-dbde05b9cb136ae6: crates/bench/src/main.rs

crates/bench/src/main.rs:
