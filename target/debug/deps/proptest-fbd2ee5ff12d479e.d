/root/repo/target/debug/deps/proptest-fbd2ee5ff12d479e.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fbd2ee5ff12d479e.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
