/root/repo/target/debug/deps/medusa_serving-9a34b0a8149db38e.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_serving-9a34b0a8149db38e.rmeta: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
