/root/repo/target/debug/deps/medusa_bench-dc5fd5174f8b1983.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_bench-dc5fd5174f8b1983.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
