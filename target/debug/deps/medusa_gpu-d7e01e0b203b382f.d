/root/repo/target/debug/deps/medusa_gpu-d7e01e0b203b382f.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_gpu-d7e01e0b203b382f.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/error.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/library.rs:
crates/gpu/src/memory.rs:
crates/gpu/src/process.rs:
crates/gpu/src/storage.rs:
crates/gpu/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
