/root/repo/target/debug/deps/repro-5188ad8a5c747868.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librepro-5188ad8a5c747868.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
