/root/repo/target/debug/deps/medusa_cli-f52cf40d0837879d.d: crates/core/src/bin/medusa-cli.rs

/root/repo/target/debug/deps/medusa_cli-f52cf40d0837879d: crates/core/src/bin/medusa-cli.rs

crates/core/src/bin/medusa-cli.rs:
