/root/repo/target/debug/deps/medusa_serving-bdc866fb5ffe08dc.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/libmedusa_serving-bdc866fb5ffe08dc.rlib: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/libmedusa_serving-bdc866fb5ffe08dc.rmeta: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
