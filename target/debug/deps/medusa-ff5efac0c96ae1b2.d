/root/repo/target/debug/deps/medusa-ff5efac0c96ae1b2.d: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libmedusa-ff5efac0c96ae1b2.rlib: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libmedusa-ff5efac0c96ae1b2.rmeta: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/artifact.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline/analysis.rs:
crates/core/src/offline/capture.rs:
crates/core/src/online/kernels.rs:
crates/core/src/online/replay.rs:
crates/core/src/online/validate.rs:
crates/core/src/pipeline.rs:
crates/core/src/tp.rs:
crates/core/src/trace.rs:
