/root/repo/target/debug/deps/proptest-0aed82962e19c58e.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0aed82962e19c58e.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0aed82962e19c58e.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
