/root/repo/target/debug/deps/medusa-d49c9ddc2b394a75.d: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa-d49c9ddc2b394a75.rmeta: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline/analysis.rs crates/core/src/offline/capture.rs crates/core/src/online/kernels.rs crates/core/src/online/replay.rs crates/core/src/online/validate.rs crates/core/src/pipeline.rs crates/core/src/tp.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/artifact.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline/analysis.rs:
crates/core/src/offline/capture.rs:
crates/core/src/online/kernels.rs:
crates/core/src/online/replay.rs:
crates/core/src/online/validate.rs:
crates/core/src/pipeline.rs:
crates/core/src/tp.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
