/root/repo/target/debug/deps/medusa_serving-665eb7537d7c6d3c.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/libmedusa_serving-665eb7537d7c6d3c.rlib: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/libmedusa_serving-665eb7537d7c6d3c.rmeta: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
