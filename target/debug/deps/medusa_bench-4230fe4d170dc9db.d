/root/repo/target/debug/deps/medusa_bench-4230fe4d170dc9db.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libmedusa_bench-4230fe4d170dc9db.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libmedusa_bench-4230fe4d170dc9db.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
