/root/repo/target/debug/deps/medusa_cli-c952b1cc48867126.d: crates/core/src/bin/medusa-cli.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_cli-c952b1cc48867126.rmeta: crates/core/src/bin/medusa-cli.rs Cargo.toml

crates/core/src/bin/medusa-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
