/root/repo/target/debug/deps/medusa_graph-c99c05ee969bb60e.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_graph-c99c05ee969bb60e.rmeta: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
