/root/repo/target/debug/deps/false_positive-52b6293615c006d4.d: tests/false_positive.rs Cargo.toml

/root/repo/target/debug/deps/libfalse_positive-52b6293615c006d4.rmeta: tests/false_positive.rs Cargo.toml

tests/false_positive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
