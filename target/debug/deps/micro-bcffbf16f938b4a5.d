/root/repo/target/debug/deps/micro-bcffbf16f938b4a5.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-bcffbf16f938b4a5: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
