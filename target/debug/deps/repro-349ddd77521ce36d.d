/root/repo/target/debug/deps/repro-349ddd77521ce36d.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-349ddd77521ce36d: crates/bench/src/main.rs

crates/bench/src/main.rs:
