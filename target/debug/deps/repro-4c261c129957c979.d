/root/repo/target/debug/deps/repro-4c261c129957c979.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librepro-4c261c129957c979.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
