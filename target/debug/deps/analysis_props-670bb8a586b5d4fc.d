/root/repo/target/debug/deps/analysis_props-670bb8a586b5d4fc.d: tests/analysis_props.rs

/root/repo/target/debug/deps/analysis_props-670bb8a586b5d4fc: tests/analysis_props.rs

tests/analysis_props.rs:
