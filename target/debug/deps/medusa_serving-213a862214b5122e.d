/root/repo/target/debug/deps/medusa_serving-213a862214b5122e.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_serving-213a862214b5122e.rmeta: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
