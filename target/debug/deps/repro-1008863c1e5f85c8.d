/root/repo/target/debug/deps/repro-1008863c1e5f85c8.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-1008863c1e5f85c8: crates/bench/src/main.rs

crates/bench/src/main.rs:
