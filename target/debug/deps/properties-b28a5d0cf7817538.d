/root/repo/target/debug/deps/properties-b28a5d0cf7817538.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b28a5d0cf7817538: tests/properties.rs

tests/properties.rs:
