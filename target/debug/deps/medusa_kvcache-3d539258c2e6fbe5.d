/root/repo/target/debug/deps/medusa_kvcache-3d539258c2e6fbe5.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/medusa_kvcache-3d539258c2e6fbe5: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
