/root/repo/target/debug/deps/medusa_graph-b3bcba90cef46c98.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libmedusa_graph-b3bcba90cef46c98.rlib: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libmedusa_graph-b3bcba90cef46c98.rmeta: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
