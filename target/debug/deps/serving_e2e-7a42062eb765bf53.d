/root/repo/target/debug/deps/serving_e2e-7a42062eb765bf53.d: tests/serving_e2e.rs

/root/repo/target/debug/deps/serving_e2e-7a42062eb765bf53: tests/serving_e2e.rs

tests/serving_e2e.rs:
