/root/repo/target/debug/deps/medusa_serving-69a8e11cd0af6b82.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/medusa_serving-69a8e11cd0af6b82: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
