/root/repo/target/debug/deps/proptest-860c51d36090998b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-860c51d36090998b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
