/root/repo/target/debug/deps/medusa_model-f209bc20a2f67eda.d: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

/root/repo/target/debug/deps/libmedusa_model-f209bc20a2f67eda.rlib: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

/root/repo/target/debug/deps/libmedusa_model-f209bc20a2f67eda.rmeta: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs

crates/model/src/lib.rs:
crates/model/src/forward.rs:
crates/model/src/kernels.rs:
crates/model/src/schedule.rs:
crates/model/src/spec.rs:
crates/model/src/structure.rs:
crates/model/src/tokenizer.rs:
crates/model/src/weights.rs:
