/root/repo/target/debug/deps/medusa_model-f5b89c37b5b0e256.d: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_model-f5b89c37b5b0e256.rmeta: crates/model/src/lib.rs crates/model/src/forward.rs crates/model/src/kernels.rs crates/model/src/schedule.rs crates/model/src/spec.rs crates/model/src/structure.rs crates/model/src/tokenizer.rs crates/model/src/weights.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/forward.rs:
crates/model/src/kernels.rs:
crates/model/src/schedule.rs:
crates/model/src/spec.rs:
crates/model/src/structure.rs:
crates/model/src/tokenizer.rs:
crates/model/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
