/root/repo/target/debug/deps/end_to_end-68ff93e09df46d21.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-68ff93e09df46d21: tests/end_to_end.rs

tests/end_to_end.rs:
