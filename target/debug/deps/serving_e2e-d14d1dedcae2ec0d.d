/root/repo/target/debug/deps/serving_e2e-d14d1dedcae2ec0d.d: tests/serving_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libserving_e2e-d14d1dedcae2ec0d.rmeta: tests/serving_e2e.rs Cargo.toml

tests/serving_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
