/root/repo/target/debug/deps/serde_json-220a1db5b17142b2.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-220a1db5b17142b2.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-220a1db5b17142b2.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
