/root/repo/target/debug/deps/properties-e5df8bde492702ff.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e5df8bde492702ff.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
