/root/repo/target/debug/deps/medusa_serving-647c85ee98ae3a5e.d: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

/root/repo/target/debug/deps/medusa_serving-647c85ee98ae3a5e: crates/serving/src/lib.rs crates/serving/src/analytic.rs crates/serving/src/params.rs crates/serving/src/sim.rs

crates/serving/src/lib.rs:
crates/serving/src/analytic.rs:
crates/serving/src/params.rs:
crates/serving/src/sim.rs:
