/root/repo/target/debug/deps/serde_json-81013cd8ea7a4570.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-81013cd8ea7a4570: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
