/root/repo/target/debug/deps/determinism-69f47fc66b04debe.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-69f47fc66b04debe: tests/determinism.rs

tests/determinism.rs:
