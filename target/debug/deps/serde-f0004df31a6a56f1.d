/root/repo/target/debug/deps/serde-f0004df31a6a56f1.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-f0004df31a6a56f1: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
