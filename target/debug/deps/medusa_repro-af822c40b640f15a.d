/root/repo/target/debug/deps/medusa_repro-af822c40b640f15a.d: src/lib.rs

/root/repo/target/debug/deps/medusa_repro-af822c40b640f15a: src/lib.rs

src/lib.rs:
