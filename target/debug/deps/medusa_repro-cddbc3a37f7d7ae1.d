/root/repo/target/debug/deps/medusa_repro-cddbc3a37f7d7ae1.d: src/lib.rs

/root/repo/target/debug/deps/medusa_repro-cddbc3a37f7d7ae1: src/lib.rs

src/lib.rs:
