/root/repo/target/debug/deps/medusa_workload-54be27e91acedb0b.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/medusa_workload-54be27e91acedb0b: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
