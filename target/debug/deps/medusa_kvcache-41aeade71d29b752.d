/root/repo/target/debug/deps/medusa_kvcache-41aeade71d29b752.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/libmedusa_kvcache-41aeade71d29b752.rlib: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/libmedusa_kvcache-41aeade71d29b752.rmeta: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
