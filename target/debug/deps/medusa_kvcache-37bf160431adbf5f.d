/root/repo/target/debug/deps/medusa_kvcache-37bf160431adbf5f.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

/root/repo/target/debug/deps/medusa_kvcache-37bf160431adbf5f: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
