/root/repo/target/debug/deps/stress-122c964008c92573.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-122c964008c92573.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
