/root/repo/target/debug/deps/properties-2313158f741cfdc2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-2313158f741cfdc2: tests/properties.rs

tests/properties.rs:
