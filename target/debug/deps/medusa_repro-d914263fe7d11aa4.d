/root/repo/target/debug/deps/medusa_repro-d914263fe7d11aa4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_repro-d914263fe7d11aa4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
