/root/repo/target/debug/deps/device_side-8954fb1757ef0eea.d: tests/device_side.rs

/root/repo/target/debug/deps/device_side-8954fb1757ef0eea: tests/device_side.rs

tests/device_side.rs:
