/root/repo/target/debug/deps/medusa_graph-d34ff132cf0511db.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/medusa_graph-d34ff132cf0511db: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
