/root/repo/target/debug/deps/end_to_end-c1f25b5a5be33e83.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c1f25b5a5be33e83: tests/end_to_end.rs

tests/end_to_end.rs:
