/root/repo/target/debug/deps/medusa_graph-98385468ff8eea08.d: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libmedusa_graph-98385468ff8eea08.rlib: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/libmedusa_graph-98385468ff8eea08.rmeta: crates/graph/src/lib.rs crates/graph/src/capture.rs crates/graph/src/error.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/capture.rs:
crates/graph/src/error.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/node.rs:
