/root/repo/target/debug/deps/medusa_workload-23b83285b8c4ccb8.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/medusa_workload-23b83285b8c4ccb8: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
