/root/repo/target/debug/deps/medusa_repro-8a9c711f2f05de7f.d: src/lib.rs

/root/repo/target/debug/deps/libmedusa_repro-8a9c711f2f05de7f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedusa_repro-8a9c711f2f05de7f.rmeta: src/lib.rs

src/lib.rs:
