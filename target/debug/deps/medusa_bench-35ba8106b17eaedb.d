/root/repo/target/debug/deps/medusa_bench-35ba8106b17eaedb.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/medusa_bench-35ba8106b17eaedb: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
