/root/repo/target/debug/deps/determinism-3b2b442fb435433d.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-3b2b442fb435433d.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
