/root/repo/target/debug/deps/medusa_cli-1a87ac1114205925.d: crates/core/src/bin/medusa-cli.rs

/root/repo/target/debug/deps/medusa_cli-1a87ac1114205925: crates/core/src/bin/medusa-cli.rs

crates/core/src/bin/medusa-cli.rs:
