/root/repo/target/debug/deps/analysis_props-d0126b081c840c10.d: tests/analysis_props.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_props-d0126b081c840c10.rmeta: tests/analysis_props.rs Cargo.toml

tests/analysis_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
