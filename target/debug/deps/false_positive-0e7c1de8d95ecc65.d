/root/repo/target/debug/deps/false_positive-0e7c1de8d95ecc65.d: tests/false_positive.rs

/root/repo/target/debug/deps/false_positive-0e7c1de8d95ecc65: tests/false_positive.rs

tests/false_positive.rs:
