/root/repo/target/debug/deps/false_positive-431518628397f247.d: tests/false_positive.rs

/root/repo/target/debug/deps/false_positive-431518628397f247: tests/false_positive.rs

tests/false_positive.rs:
