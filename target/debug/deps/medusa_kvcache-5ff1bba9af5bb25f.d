/root/repo/target/debug/deps/medusa_kvcache-5ff1bba9af5bb25f.d: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_kvcache-5ff1bba9af5bb25f.rmeta: crates/kvcache/src/lib.rs crates/kvcache/src/block.rs crates/kvcache/src/profile.rs Cargo.toml

crates/kvcache/src/lib.rs:
crates/kvcache/src/block.rs:
crates/kvcache/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
