/root/repo/target/debug/deps/medusa_gpu-33335c2b9f3ef9a0.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs

/root/repo/target/debug/deps/medusa_gpu-33335c2b9f3ef9a0: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/error.rs crates/gpu/src/kernel.rs crates/gpu/src/library.rs crates/gpu/src/memory.rs crates/gpu/src/process.rs crates/gpu/src/storage.rs crates/gpu/src/stream.rs

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/error.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/library.rs:
crates/gpu/src/memory.rs:
crates/gpu/src/process.rs:
crates/gpu/src/storage.rs:
crates/gpu/src/stream.rs:
