/root/repo/target/debug/deps/analysis_props-2524781aa5b83d3a.d: tests/analysis_props.rs

/root/repo/target/debug/deps/analysis_props-2524781aa5b83d3a: tests/analysis_props.rs

tests/analysis_props.rs:
