/root/repo/target/debug/deps/medusa_bench-0d8d94ed71758e05.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/medusa_bench-0d8d94ed71758e05: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
