/root/repo/target/debug/deps/micro-fe1b69c6ac203866.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-fe1b69c6ac203866.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
