/root/repo/target/debug/deps/medusa_repro-8a10a3648128235c.d: src/lib.rs

/root/repo/target/debug/deps/libmedusa_repro-8a10a3648128235c.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedusa_repro-8a10a3648128235c.rmeta: src/lib.rs

src/lib.rs:
