/root/repo/target/debug/deps/serving_e2e-06fd88c06a08bc0a.d: tests/serving_e2e.rs

/root/repo/target/debug/deps/serving_e2e-06fd88c06a08bc0a: tests/serving_e2e.rs

tests/serving_e2e.rs:
