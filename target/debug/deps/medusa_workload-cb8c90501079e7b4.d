/root/repo/target/debug/deps/medusa_workload-cb8c90501079e7b4.d: crates/workload/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmedusa_workload-cb8c90501079e7b4.rmeta: crates/workload/src/lib.rs Cargo.toml

crates/workload/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
