/root/repo/target/debug/deps/medusa_cli-6a5807192adf1cc5.d: crates/core/src/bin/medusa-cli.rs

/root/repo/target/debug/deps/medusa_cli-6a5807192adf1cc5: crates/core/src/bin/medusa-cli.rs

crates/core/src/bin/medusa-cli.rs:
