/root/repo/target/debug/deps/stress-20a1260cf698fb8b.d: tests/stress.rs

/root/repo/target/debug/deps/stress-20a1260cf698fb8b: tests/stress.rs

tests/stress.rs:
