/root/repo/target/debug/deps/medusa_bench-4d04620534239a36.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libmedusa_bench-4d04620534239a36.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libmedusa_bench-4d04620534239a36.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/figures.rs:
