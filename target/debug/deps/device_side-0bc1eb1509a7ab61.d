/root/repo/target/debug/deps/device_side-0bc1eb1509a7ab61.d: tests/device_side.rs Cargo.toml

/root/repo/target/debug/deps/libdevice_side-0bc1eb1509a7ab61.rmeta: tests/device_side.rs Cargo.toml

tests/device_side.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
